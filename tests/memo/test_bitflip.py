"""LUT storage corruption under the lut-bitflip fault model.

Parity-triggered scrubbing: an upset in a stored entry is detected at
the next lookup and the entry is invalidated instead of served, so
corruption costs capacity, never correctness.
"""

import pytest

from repro.config import MemoConfig
from repro.errors import MemoizationError
from repro.memo.fifo import MemoFifo
from repro.memo.lut import LutStats, MemoLUT
from repro.timing.faults import LutBitflipCorruptor
from repro.utils.rng import RngStream


class AlwaysFlipNewest:
    """A deterministic corruptor: every exposure flips the newest entry."""

    rate = 1.0

    def __init__(self):
        self.flips = 0

    def step(self, occupancy):
        if occupancy <= 0:
            return None
        self.flips += 1
        return 0, 7


class NeverFlips:
    rate = 0.0

    def step(self, occupancy):
        return None


class TestFifoInvalidate:
    def test_invalidate_newest(self, add_op):
        fifo = MemoFifo(2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        fifo.insert(add_op, (4.0, 5.0), 9.0)
        fifo.invalidate(0)
        assert len(fifo) == 1
        assert fifo.entries[0].result == 3.0

    def test_invalidate_oldest(self, add_op):
        fifo = MemoFifo(2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        fifo.insert(add_op, (4.0, 5.0), 9.0)
        fifo.invalidate(1)
        assert len(fifo) == 1
        assert fifo.entries[0].result == 9.0

    def test_out_of_range_rejected(self, add_op):
        fifo = MemoFifo(2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        with pytest.raises(MemoizationError):
            fifo.invalidate(1)
        with pytest.raises(MemoizationError):
            fifo.invalidate(-1)


class TestLutCorruption:
    def test_detected_flip_scrubs_instead_of_serving(self, add_op):
        lut = MemoLUT(MemoConfig(threshold=0.0))
        lut.attach_corruptor(AlwaysFlipNewest())
        lut.update(add_op, (1.0, 2.0), 3.0)
        # The stored entry takes an upset at lookup time; parity catches
        # it, the entry is scrubbed and the lookup misses.
        hit, result, _ = lut.lookup(add_op, (1.0, 2.0))
        assert not hit and result is None
        assert len(lut.fifo) == 0
        assert lut.stats.bitflips == 1
        assert lut.stats.bitflips_detected == 1

    def test_empty_fifo_never_exposed(self, add_op):
        lut = MemoLUT()
        corruptor = AlwaysFlipNewest()
        lut.attach_corruptor(corruptor)
        lut.lookup(add_op, (1.0, 2.0))
        assert corruptor.flips == 0
        assert lut.stats.bitflips == 0

    def test_zero_rate_corruptor_changes_nothing(self, add_op):
        lut = MemoLUT()
        lut.attach_corruptor(NeverFlips())
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, result, _ = lut.lookup(add_op, (1.0, 2.0))
        assert hit and result == 3.0
        assert lut.stats.bitflips == 0

    def test_real_corruptor_end_to_end(self, add_op):
        lut = MemoLUT(MemoConfig(fifo_depth=2))
        lut.attach_corruptor(
            LutBitflipCorruptor(1.0, RngStream(3, "lut-bitflip"))
        )
        lut.update(add_op, (1.0, 2.0), 3.0)
        lut.update(add_op, (4.0, 5.0), 9.0)
        lut.lookup(add_op, (1.0, 2.0))
        assert lut.stats.bitflips == 1
        assert len(lut.fifo) == 1

    def test_stats_merge_carries_bitflips(self):
        a = LutStats(bitflips=2, bitflips_detected=2)
        b = LutStats(bitflips=3, bitflips_detected=3)
        a.merge(b)
        assert a.bitflips == 5
        assert a.bitflips_detected == 5


class TestCodecByteIdentity:
    def test_zero_bitflips_payload_is_legacy_shaped(self):
        from repro.campaign.codec import _lut_stats_to_dict

        document = _lut_stats_to_dict(LutStats(lookups=4, hits=2, updates=2))
        assert "bitflips" not in document
        assert "bitflips_detected" not in document

    def test_nonzero_bitflips_round_trip(self):
        from repro.campaign.codec import (
            _lut_stats_from_dict,
            _lut_stats_to_dict,
        )

        stats = LutStats(
            lookups=4, hits=1, updates=3, bitflips=2, bitflips_detected=2
        )
        decoded = _lut_stats_from_dict(_lut_stats_to_dict(stats))
        assert decoded.bitflips == 2
        assert decoded.bitflips_detected == 2

    def test_legacy_payload_decodes_to_zero(self):
        from repro.campaign.codec import _lut_stats_from_dict

        decoded = _lut_stats_from_dict(
            {"lookups": 4, "hits": 2, "updates": 2, "outcomes": {}}
        )
        assert decoded.bitflips == 0
        assert decoded.bitflips_detected == 0
