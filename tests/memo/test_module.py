"""Tests for the Table-2 decision logic."""


from repro.config import MemoConfig
from repro.memo.module import (
    ACTION_TABLE,
    MemoAction,
    TemporalMemoizationModule,
)


def make_module(**kwargs):
    return TemporalMemoizationModule(MemoConfig(**kwargs))


def fail_compute():
    raise AssertionError("compute must not run on a hit")


class TestActionTable:
    def test_all_four_states_present(self):
        assert set(ACTION_TABLE) == {
            (False, False),
            (False, True),
            (True, False),
            (True, True),
        }

    def test_mapping_matches_paper(self):
        assert ACTION_TABLE[(False, False)] is MemoAction.NORMAL_UPDATE
        assert ACTION_TABLE[(False, True)] is MemoAction.BASELINE_RECOVERY
        assert ACTION_TABLE[(True, False)] is MemoAction.REUSE_GATED
        assert ACTION_TABLE[(True, True)] is MemoAction.REUSE_MASK_ERROR


class TestMissNoError:
    def test_normal_execution_updates_lut(self, add_op):
        module = make_module()
        decision = module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        assert decision.action is MemoAction.NORMAL_UPDATE
        assert decision.result == 3.0
        assert not decision.output_is_lut
        assert decision.lut_updated
        assert not decision.recovery_triggered

    def test_q_pipe_selects_qs(self, add_op):
        module = make_module()
        decision = module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        assert not decision.output_is_lut


class TestMissWithError:
    def test_recovery_triggered(self, add_op):
        module = make_module()
        decision = module.step(add_op, (1.0, 2.0), True, compute=lambda: 3.0)
        assert decision.action is MemoAction.BASELINE_RECOVERY
        assert decision.recovery_triggered
        assert not decision.error_masked

    def test_no_lut_update_on_errant_execution(self, add_op):
        # W_en requires no timing error during all stages.
        module = make_module()
        decision = module.step(add_op, (1.0, 2.0), True, compute=lambda: 3.0)
        assert not decision.lut_updated
        follow_up = module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        assert not follow_up.hit  # nothing was memorized

    def test_update_on_error_control_bit(self, add_op):
        module = make_module(update_on_timing_error=True)
        decision = module.step(add_op, (1.0, 2.0), True, compute=lambda: 3.0)
        assert decision.lut_updated
        follow_up = module.step(add_op, (1.0, 2.0), False, compute=fail_compute)
        assert follow_up.hit


class TestHitNoError:
    def test_reuse_skips_computation(self, add_op):
        module = make_module()
        module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        decision = module.step(add_op, (1.0, 2.0), False, compute=fail_compute)
        assert decision.action is MemoAction.REUSE_GATED
        assert decision.result == 3.0
        assert decision.output_is_lut

    def test_hit_does_not_update_lut(self, add_op):
        module = make_module()
        module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        decision = module.step(add_op, (1.0, 2.0), False, compute=fail_compute)
        assert not decision.lut_updated


class TestHitWithError:
    def test_error_masked(self, add_op):
        module = make_module()
        module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        decision = module.step(add_op, (1.0, 2.0), True, compute=fail_compute)
        assert decision.action is MemoAction.REUSE_MASK_ERROR
        assert decision.error_masked
        assert not decision.recovery_triggered
        assert decision.result == 3.0


class TestApproximateReuse:
    def test_approximate_hit_returns_stored_value(self, add_op):
        module = make_module(threshold=0.5)
        module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        decision = module.step(add_op, (1.2, 2.1), False, compute=fail_compute)
        assert decision.hit
        assert decision.result == 3.0  # the *stored* result, not 3.3

    def test_exact_module_rejects_nearby_operands(self, add_op):
        module = make_module(threshold=0.0)
        module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        decision = module.step(add_op, (1.2, 2.1), False, compute=lambda: 3.3)
        assert not decision.hit
        assert decision.result == 3.3


class TestReset:
    def test_reset_forgets_contexts(self, add_op):
        module = make_module()
        module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        module.reset()
        decision = module.step(add_op, (1.0, 2.0), False, compute=lambda: 3.0)
        assert not decision.hit
