"""Tests for the single-cycle memoization LUT."""

import pytest

from repro.config import MemoConfig
from repro.errors import MemoizationError
from repro.memo.lut import MemoLUT
from repro.memo.matching import MatchOutcome
from repro.utils.bitops import fraction_mask_vector


class TestLookupAndUpdate:
    def test_miss_then_hit(self, add_op):
        lut = MemoLUT(MemoConfig(threshold=0.0))
        hit, result, outcome = lut.lookup(add_op, (1.0, 2.0))
        assert not hit and result is None and outcome is MatchOutcome.MISS
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, result, outcome = lut.lookup(add_op, (1.0, 2.0))
        assert hit and result == 3.0 and outcome is MatchOutcome.EXACT

    def test_stats_counted(self, add_op):
        lut = MemoLUT()
        lut.lookup(add_op, (1.0, 2.0))
        lut.update(add_op, (1.0, 2.0), 3.0)
        lut.lookup(add_op, (1.0, 2.0))
        assert lut.stats.lookups == 2
        assert lut.stats.hits == 1
        assert lut.stats.misses == 1
        assert lut.stats.updates == 1
        assert lut.stats.hit_rate == 0.5

    def test_outcome_counts(self, add_op):
        lut = MemoLUT(MemoConfig(threshold=0.5))
        lut.update(add_op, (1.0, 2.0), 3.0)
        lut.lookup(add_op, (1.2, 2.0))
        assert lut.stats.outcome_counts[MatchOutcome.APPROXIMATE] == 1

    def test_fifo_depth_respected(self, add_op):
        lut = MemoLUT(MemoConfig(fifo_depth=2))
        for i in range(3):
            lut.update(add_op, (float(i), float(i)), 2.0 * i)
        hit, _, _ = lut.lookup(add_op, (0.0, 0.0))
        assert not hit

    def test_mmio_counters_track_stats(self, add_op):
        lut = MemoLUT()
        lut.update(add_op, (1.0, 2.0), 3.0)
        lut.lookup(add_op, (1.0, 2.0))
        assert lut.mmio.read(0x10) == lut.stats.hits
        assert lut.mmio.read(0x14) == lut.stats.lookups


class TestProgramming:
    def test_program_threshold_takes_effect(self, add_op):
        lut = MemoLUT(MemoConfig(threshold=0.0))
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, _, _ = lut.lookup(add_op, (1.2, 2.0))
        assert not hit
        lut.program_threshold(0.5)
        hit, result, _ = lut.lookup(add_op, (1.2, 2.0))
        assert hit and result == 3.0

    def test_program_threshold_updates_mmio(self):
        lut = MemoLUT()
        lut.program_threshold(0.25)
        assert lut.mmio.threshold == 0.25

    def test_negative_threshold_rejected(self):
        with pytest.raises(MemoizationError):
            MemoLUT().program_threshold(-0.5)

    def test_program_mask(self, add_op):
        lut = MemoLUT()
        lut.program_mask(23)  # ignore entire fraction
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, _, _ = lut.lookup(add_op, (1.5, 2.0))  # same exponent+sign
        assert hit
        assert lut.mmio.mask_vector == fraction_mask_vector(23)

    def test_program_mask_out_of_range(self):
        with pytest.raises(MemoizationError):
            MemoLUT().program_mask(24)

    def test_program_threshold_clears_stale_mask(self, add_op):
        # Regression: program_threshold left the previously programmed mask
        # vector in MMIO register 0x00, so threshold mode kept ignoring
        # fraction bits masked by an earlier program_mask call.
        lut = MemoLUT()
        lut.program_mask(23)
        lut.program_threshold(0.01)
        assert lut.mmio.mask_vector == fraction_mask_vector(0)
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, _, _ = lut.lookup(add_op, (1.5, 2.0))  # far outside threshold
        assert not hit

    def test_config_mask_applied_at_construction(self, add_op):
        lut = MemoLUT(MemoConfig(masked_fraction_bits=23))
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, _, _ = lut.lookup(add_op, (1.25, 2.0))
        assert hit


class TestPowerGating:
    def test_power_gated_lut_never_hits(self, add_op):
        lut = MemoLUT(MemoConfig(power_gated=True))
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, result, _ = lut.lookup(add_op, (1.0, 2.0))
        assert not hit and result is None
        assert lut.stats.lookups == 0  # gated: no energy, no stats

    def test_gate_and_ungate_at_runtime(self, add_op):
        lut = MemoLUT()
        lut.update(add_op, (1.0, 2.0), 3.0)
        lut.power_gate(True)
        assert not lut.lookup(add_op, (1.0, 2.0))[0]
        lut.power_gate(False)
        assert lut.lookup(add_op, (1.0, 2.0))[0]


class TestReset:
    def test_reset_clears_contexts_and_stats(self, add_op):
        lut = MemoLUT()
        lut.update(add_op, (1.0, 2.0), 3.0)
        lut.lookup(add_op, (1.0, 2.0))
        lut.reset()
        assert lut.stats.lookups == 0
        assert not lut.lookup(add_op, (1.0, 2.0))[0]


class TestLutStatsMerge:
    def test_merge_accumulates(self, add_op):
        a = MemoLUT()
        b = MemoLUT()
        a.update(add_op, (1.0, 2.0), 3.0)
        a.lookup(add_op, (1.0, 2.0))
        b.lookup(add_op, (9.0, 9.0))
        a.stats.merge(b.stats)
        assert a.stats.lookups == 2
        assert a.stats.hits == 1
        assert a.stats.updates == 1


class TestResetClearsStatus:
    """Regression: reset() used to leave the sticky STATUS any-hit flag."""

    def test_reset_clears_sticky_status_flag(self, add_op):
        from repro.memo.mmio import REG_STATUS

        lut = MemoLUT()
        lut.update(add_op, (1.0, 2.0), 3.0)
        hit, _, _ = lut.lookup(add_op, (1.0, 2.0))
        assert hit
        assert lut.mmio.read(REG_STATUS) & 1
        lut.reset()
        assert lut.mmio.read(REG_STATUS) == 0


class TestNonFiniteThreshold:
    """Regression: NaN passed the bare ``threshold < 0.0`` validation."""

    @pytest.mark.parametrize(
        "threshold", [float("nan"), float("inf"), float("-inf")]
    )
    def test_program_threshold_rejects_non_finite(self, threshold):
        lut = MemoLUT()
        with pytest.raises(MemoizationError):
            lut.program_threshold(threshold)

    def test_memo_config_rejects_nan_threshold(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            MemoConfig(threshold=float("nan"))
