"""Tests for the analytic resilient-FPU model."""


from repro.config import ArchConfig, MemoConfig, TimingConfig
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic
from repro.memo.matching import MatchOutcome
from repro.memo.resilient import FpuEventCounters, ResilientFpu
from repro.timing.errors import BernoulliInjector, NoErrorInjector
from repro.utils.rng import RngStream

ADD = opcode_by_mnemonic("ADD")
SQRT = opcode_by_mnemonic("SQRT")


class AlwaysError:
    rate = 1.0

    def sample(self):
        return True


def make_fpu(memo=MemoConfig(), injector=None, kind=UnitKind.ADD):
    return ResilientFpu(kind, memo, injector or NoErrorInjector())


class TestBasicExecution:
    def test_returns_correct_result(self):
        fpu = make_fpu()
        assert fpu.execute(ADD, (1.0, 2.0)) == 3.0

    def test_counts_ops_and_cycles(self):
        fpu = make_fpu()
        for _ in range(5):
            fpu.execute(ADD, (1.0, 2.0))
        assert fpu.counters.ops == 5
        assert fpu.counters.issue_cycles == 5

    def test_baseline_has_no_memo(self):
        fpu = ResilientFpu(UnitKind.ADD, memo_config=None)
        assert fpu.memo is None
        assert fpu.execute(ADD, (1.0, 2.0)) == 3.0
        assert fpu.hit_rate == 0.0

    def test_recip_uses_deep_pipeline(self):
        arch = ArchConfig()
        fpu = ResilientFpu(UnitKind.RECIP, MemoConfig(), NoErrorInjector(), arch=arch)
        assert fpu.depth == arch.recip_pipeline_stages


class TestMemoizationPath:
    def test_hit_gates_remaining_stages(self):
        fpu = make_fpu()
        fpu.execute(ADD, (1.0, 2.0))  # miss: 4 active traversals
        fpu.execute(ADD, (1.0, 2.0))  # hit: 1 active + 3 gated
        assert fpu.counters.active_stage_traversals == 5
        assert fpu.counters.gated_stage_traversals == 3

    def test_hit_rate_property(self):
        fpu = make_fpu()
        fpu.execute(ADD, (1.0, 2.0))
        fpu.execute(ADD, (1.0, 2.0))
        assert fpu.hit_rate == 0.5

    def test_approximate_hit_changes_result(self):
        fpu = make_fpu(MemoConfig(threshold=0.5))
        fpu.execute(ADD, (1.0, 2.0))
        result = fpu.execute(ADD, (1.2, 2.0))
        assert result == 3.0  # reused, not 3.2

    def test_power_gated_module_never_hits(self):
        fpu = make_fpu(MemoConfig(power_gated=True))
        fpu.execute(ADD, (1.0, 2.0))
        fpu.execute(ADD, (1.0, 2.0))
        assert fpu.memo.lut.stats.lookups == 0
        assert fpu.counters.active_stage_traversals == 8


class TestErrorHandling:
    def test_error_on_miss_triggers_recovery(self):
        fpu = make_fpu(injector=AlwaysError())
        fpu.execute(ADD, (1.0, 2.0))
        assert fpu.counters.errors_injected == 1
        assert fpu.counters.errors_recovered == 1
        assert fpu.counters.recovery_stall_cycles == 12
        assert fpu.ecu.stats.recoveries == 1

    def test_error_on_hit_is_masked(self):
        # First execution errs (recovery, no update with default W_en)...
        fpu = make_fpu(MemoConfig(update_on_timing_error=True), AlwaysError())
        fpu.execute(ADD, (1.0, 2.0))
        fpu.execute(ADD, (1.0, 2.0))  # hit with error -> masked
        assert fpu.counters.errors_masked == 1
        assert fpu.ecu.stats.masked_by_memoization == 1
        assert fpu.counters.recovery_stall_cycles == 12  # only the first one

    def test_default_wen_blocks_update_on_error(self):
        fpu = make_fpu(injector=AlwaysError())
        fpu.execute(ADD, (1.0, 2.0))
        fpu.execute(ADD, (1.0, 2.0))
        # No entry was ever memorized: both executions recovered.
        assert fpu.counters.errors_recovered == 2
        assert fpu.memo.lut.stats.updates == 0

    def test_result_correct_despite_error(self):
        fpu = make_fpu(injector=AlwaysError())
        assert fpu.execute(ADD, (1.0, 2.0)) == 3.0

    def test_recovery_cycles_follow_timing_config(self):
        timing = TimingConfig(error_rate=1.0, recovery_cycles=28)
        fpu = ResilientFpu.build(UnitKind.ADD, MemoConfig(), timing)
        fpu.execute(ADD, (1.0, 2.0))
        assert fpu.counters.recovery_stall_cycles == 28

    def test_statistical_error_rate(self):
        injector = BernoulliInjector(0.25, RngStream(1, "t"))
        fpu = make_fpu(MemoConfig(power_gated=True), injector)
        for i in range(4000):
            fpu.execute(ADD, (float(i), 1.0))
        rate = fpu.counters.errors_injected / fpu.counters.ops
        assert 0.2 < rate < 0.3


class TestDetailedExecution:
    def test_detailed_hit_record(self):
        fpu = make_fpu()
        fpu.execute(ADD, (1.0, 2.0))
        outcome = fpu.execute_detailed(ADD, (1.0, 2.0))
        assert outcome.hit
        assert outcome.result == 3.0
        assert outcome.recovery_cycles == 0

    def test_detailed_error_record(self):
        fpu = make_fpu(injector=AlwaysError())
        outcome = fpu.execute_detailed(ADD, (1.0, 2.0))
        assert outcome.timing_error
        assert not outcome.hit
        assert outcome.recovery_cycles == 12

    def test_commuted_hit_reported_as_commuted(self):
        # Regression: execute() used to discard the LUT's MatchOutcome and
        # execute_detailed() reconstructed EXACT/APPROXIMATE from the
        # constraint mode, so commuted-operand hits were misreported.
        fpu = make_fpu(MemoConfig(threshold=0.0, commutative_matching=True))
        fpu.execute(ADD, (1.0, 2.0))
        outcome = fpu.execute_detailed(ADD, (2.0, 1.0))
        assert outcome.hit
        assert outcome.match_outcome is MatchOutcome.COMMUTED
        assert fpu.memo.lut.stats.outcome_counts[MatchOutcome.COMMUTED] == 1

    def test_detailed_outcome_agrees_with_lut_counts(self):
        exact_fpu = make_fpu(MemoConfig(threshold=0.0))
        exact_fpu.execute(ADD, (1.0, 2.0))
        exact = exact_fpu.execute_detailed(ADD, (1.0, 2.0))
        assert exact.match_outcome is MatchOutcome.EXACT
        assert exact_fpu.memo.lut.stats.outcome_counts[MatchOutcome.EXACT] == 1

        approx_fpu = make_fpu(MemoConfig(threshold=0.5))
        approx_fpu.execute(ADD, (1.0, 2.0))
        approx = approx_fpu.execute_detailed(ADD, (1.2, 2.0))
        assert approx.match_outcome is MatchOutcome.APPROXIMATE
        counts = approx_fpu.memo.lut.stats.outcome_counts
        assert counts[MatchOutcome.APPROXIMATE] == 1

    def test_detailed_miss_reports_miss(self):
        fpu = make_fpu()
        outcome = fpu.execute_detailed(ADD, (1.0, 2.0))
        assert not outcome.hit
        assert outcome.match_outcome is MatchOutcome.MISS


class TestCounters:
    def test_merge(self):
        a = FpuEventCounters(ops=1, issue_cycles=1, active_stage_traversals=4)
        b = FpuEventCounters(ops=2, issue_cycles=2, recovery_stall_cycles=12)
        a.merge(b)
        assert a.ops == 3
        assert a.busy_cycles == 15

    def test_reset_stats(self):
        fpu = make_fpu()
        fpu.execute(ADD, (1.0, 2.0))
        fpu.reset_stats()
        assert fpu.counters.ops == 0
        assert fpu.memo.lut.stats.lookups == 0
