"""Tests for the matching constraints (Equation 1)."""

import math

import pytest

from repro.config import MemoConfig
from repro.errors import MemoizationError
from repro.memo.matching import MatchOutcome, MatchingConstraint
from repro.utils.bitops import bits_to_float32, float32_to_bits, fraction_mask_vector


class TestExactMatching:
    def test_identical_operands_match(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        assert constraint.match(add_op, (1.0, 2.0), (1.0, 2.0)) is MatchOutcome.EXACT

    def test_different_operands_miss(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        assert constraint.match(add_op, (1.0, 2.0), (1.0, 2.1)) is MatchOutcome.MISS

    def test_one_ulp_difference_misses(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        nudged = bits_to_float32(float32_to_bits(1.0) + 1)
        assert constraint.match(add_op, (nudged, 2.0), (1.0, 2.0)) is MatchOutcome.MISS

    def test_signed_zero_distinguished(self, add_op):
        # Bit-by-bit comparators see +0.0 != -0.0.
        constraint = MatchingConstraint(threshold=0.0, allow_commutative=False)
        assert constraint.match(add_op, (-0.0, 1.0), (0.0, 1.0)) is MatchOutcome.MISS

    def test_nan_never_matches(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        assert (
            constraint.match(add_op, (math.nan, 1.0), (math.nan, 1.0))
            is MatchOutcome.MISS
        )

    def test_arity_mismatch_misses(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        assert constraint.match(add_op, (1.0, 2.0), (1.0,)) is MatchOutcome.MISS

    def test_is_exact_property(self):
        assert MatchingConstraint(threshold=0.0).is_exact
        assert not MatchingConstraint(threshold=0.1).is_exact
        assert not MatchingConstraint(mask_vector=fraction_mask_vector(4)).is_exact


class TestApproximateMatching:
    def test_within_threshold_matches(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        outcome = constraint.match(add_op, (1.3, 2.0), (1.0, 2.0))
        assert outcome is MatchOutcome.APPROXIMATE

    def test_every_operand_must_be_within_threshold(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        assert constraint.match(add_op, (1.3, 9.0), (1.0, 2.0)) is MatchOutcome.MISS

    def test_boundary_is_inclusive(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        assert (
            constraint.match(add_op, (1.5, 2.0), (1.0, 2.0))
            is MatchOutcome.APPROXIMATE
        )

    def test_just_outside_boundary_misses(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        assert constraint.match(add_op, (1.51, 2.0), (1.0, 2.0)) is MatchOutcome.MISS

    def test_negative_differences_allowed(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        assert (
            constraint.match(add_op, (0.6, 2.0), (1.0, 2.0))
            is MatchOutcome.APPROXIMATE
        )

    def test_exact_values_under_approximate_constraint(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        assert (
            constraint.match(add_op, (1.0, 2.0), (1.0, 2.0))
            is MatchOutcome.APPROXIMATE
        )

    def test_negative_threshold_rejected(self):
        with pytest.raises(MemoizationError):
            MatchingConstraint(threshold=-0.1)


class TestMaskVectorMatching:
    def test_low_fraction_bits_ignored(self, add_op):
        constraint = MatchingConstraint(mask_vector=fraction_mask_vector(10))
        nudged = bits_to_float32(float32_to_bits(1.0) | 0x155)
        outcome = constraint.match(add_op, (nudged, 2.0), (1.0, 2.0))
        assert outcome is MatchOutcome.APPROXIMATE

    def test_high_bits_still_compared(self, add_op):
        constraint = MatchingConstraint(mask_vector=fraction_mask_vector(10))
        assert constraint.match(add_op, (1.5, 2.0), (1.0, 2.0)) is MatchOutcome.MISS

    def test_mask_and_threshold_mutually_exclusive(self):
        with pytest.raises(MemoizationError):
            MatchingConstraint(threshold=0.5, mask_vector=fraction_mask_vector(4))


class TestCommutativity:
    def test_swapped_operands_match_commutative_op(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        outcome = constraint.match(add_op, (2.0, 1.0), (1.0, 2.0))
        assert outcome is MatchOutcome.COMMUTED

    def test_swapped_operands_miss_non_commutative_op(self, sub_op):
        constraint = MatchingConstraint(threshold=0.0)
        assert constraint.match(sub_op, (2.0, 1.0), (1.0, 2.0)) is MatchOutcome.MISS

    def test_commutativity_can_be_disabled(self, add_op):
        constraint = MatchingConstraint(threshold=0.0, allow_commutative=False)
        assert constraint.match(add_op, (2.0, 1.0), (1.0, 2.0)) is MatchOutcome.MISS

    def test_muladd_commutes_multiplicands_only(self, muladd_op):
        constraint = MatchingConstraint(threshold=0.0)
        assert (
            constraint.match(muladd_op, (2.0, 3.0, 4.0), (3.0, 2.0, 4.0))
            is MatchOutcome.COMMUTED
        )
        assert (
            constraint.match(muladd_op, (2.0, 4.0, 3.0), (3.0, 2.0, 4.0))
            is MatchOutcome.MISS
        )

    def test_commuted_approximate_match(self, add_op):
        constraint = MatchingConstraint(threshold=0.5)
        outcome = constraint.match(add_op, (2.3, 1.0), (1.0, 2.0))
        assert outcome is MatchOutcome.COMMUTED

    def test_direct_match_preferred_over_commuted(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        outcome = constraint.match(add_op, (1.0, 1.0), (1.0, 1.0))
        assert outcome is MatchOutcome.EXACT


class TestNanAndSignedZeroPinning:
    """Pins the documented comparator semantics for NaN and signed
    zeros across all three modes (cross-checked by ``repro verify``)."""

    def test_threshold_mode_never_matches_nan_context(self, add_op):
        # -t <= a-b <= t is false for NaN: a NaN context can neither hit
        # nor be hit under any numeric threshold.
        constraint = MatchingConstraint(threshold=100.0)
        assert (
            constraint.match(add_op, (math.nan, 1.0), (math.nan, 1.0))
            is MatchOutcome.MISS
        )
        assert (
            constraint.match(add_op, (1.0, 1.0), (math.nan, 1.0))
            is MatchOutcome.MISS
        )

    def test_exact_mode_matches_identical_nan_patterns(self, add_op):
        # The bit comparator has no NaN special case: identical patterns
        # match, like the hardware comparator bank.
        constraint = MatchingConstraint(threshold=0.0)
        assert (
            constraint.match(add_op, (math.nan, 1.0), (math.nan, 1.0))
            is MatchOutcome.EXACT
        )

    def test_exact_mode_distinguishes_nan_payloads(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        payload = bits_to_float32(0x7FC00001)
        assert (
            constraint.match(add_op, (payload, 1.0), (math.nan, 1.0))
            is MatchOutcome.MISS
        )

    def test_mask_mode_matches_identical_nan_patterns(self, add_op):
        constraint = MatchingConstraint(mask_vector=fraction_mask_vector(10))
        assert (
            constraint.match(add_op, (math.nan, 1.0), (math.nan, 1.0))
            is MatchOutcome.APPROXIMATE
        )

    def test_threshold_mode_treats_signed_zeros_equal(self, add_op):
        # 0.0 - -0.0 is 0.0, inside any threshold.
        constraint = MatchingConstraint(threshold=0.25, allow_commutative=False)
        assert (
            constraint.match(add_op, (-0.0, 1.0), (0.0, 1.0))
            is MatchOutcome.APPROXIMATE
        )

    def test_mask_mode_distinguishes_signed_zeros(self, add_op):
        # The sign bit is never masked out.
        constraint = MatchingConstraint(
            mask_vector=fraction_mask_vector(10), allow_commutative=False
        )
        assert (
            constraint.match(add_op, (-0.0, 1.0), (0.0, 1.0))
            is MatchOutcome.MISS
        )


class TestDirectMatchPriority:
    """A direct match always wins over a commuted one: COMMUTED is only
    reported when the in-place order missed."""

    def test_equal_operands_report_exact_not_commuted(self, add_op):
        constraint = MatchingConstraint(threshold=0.0)
        assert (
            constraint.match(add_op, (2.0, 2.0), (2.0, 2.0))
            is MatchOutcome.EXACT
        )

    def test_direct_approximate_wins_over_commuted(self, add_op):
        # Both orders are within the threshold here; the direct order is
        # tried first, so the outcome is APPROXIMATE, never COMMUTED.
        constraint = MatchingConstraint(threshold=1.0)
        assert (
            constraint.match(add_op, (1.4, 1.6), (1.5, 1.5))
            is MatchOutcome.APPROXIMATE
        )

    def test_commuted_only_after_direct_miss(self, add_op):
        constraint = MatchingConstraint(threshold=0.25)
        assert (
            constraint.match(add_op, (2.0, 1.0), (1.0, 2.0))
            is MatchOutcome.COMMUTED
        )


class TestFromConfig:
    def test_threshold_config(self):
        constraint = MatchingConstraint.from_config(MemoConfig(threshold=0.25))
        assert constraint.threshold == 0.25
        assert constraint.mask_vector is None

    def test_mask_config(self):
        constraint = MatchingConstraint.from_config(
            MemoConfig(masked_fraction_bits=8)
        )
        assert constraint.mask_vector == fraction_mask_vector(8)

    def test_commutativity_config(self):
        constraint = MatchingConstraint.from_config(
            MemoConfig(commutative_matching=False)
        )
        assert not constraint.allow_commutative


class TestNonFiniteThresholdRejected:
    """Regression: NaN passed the bare ``threshold < 0.0`` validation and
    silently built a comparator bank that can never match."""

    @pytest.mark.parametrize(
        "threshold", [math.nan, math.inf, -math.inf]
    )
    def test_constraint_rejects_non_finite(self, threshold):
        with pytest.raises(MemoizationError):
            MatchingConstraint(threshold=threshold)

    def test_negative_still_rejected(self):
        with pytest.raises(MemoizationError):
            MatchingConstraint(threshold=-0.5)
