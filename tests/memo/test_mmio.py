"""Tests for the memory-mapped register interface."""

import pytest

from repro.errors import MmioError
from repro.memo.mmio import (
    CTRL_COMMUTATIVE,
    CTRL_ENABLE,
    CTRL_POWER_GATE,
    CTRL_UPDATE_ON_ERROR,
    MemoMmio,
    REG_CONTROL,
    REG_HIT_COUNT,
    REG_LOOKUP_COUNT,
    REG_MASK_VECTOR,
    REG_STATUS,
    REG_THRESHOLD,
)
from repro.utils.bitops import float32_to_bits


class TestResetState:
    def test_mask_vector_defaults_to_full_compare(self):
        assert MemoMmio().read(REG_MASK_VECTOR) == 0xFFFF_FFFF

    def test_threshold_defaults_to_zero(self):
        assert MemoMmio().threshold == 0.0

    def test_enabled_and_commutative_by_default(self):
        mmio = MemoMmio()
        assert mmio.enabled
        assert mmio.commutative
        assert not mmio.power_gated
        assert not mmio.update_on_error


class TestBusAccess:
    def test_write_and_read_mask(self):
        mmio = MemoMmio()
        mmio.write(REG_MASK_VECTOR, 0xFF80_0000)
        assert mmio.read(REG_MASK_VECTOR) == 0xFF80_0000
        assert mmio.mask_vector == 0xFF80_0000

    def test_unmapped_offset_rejected(self):
        mmio = MemoMmio()
        with pytest.raises(MmioError):
            mmio.read(0x40)
        with pytest.raises(MmioError):
            mmio.write(0x40, 0)

    def test_counter_registers_read_only(self):
        mmio = MemoMmio()
        with pytest.raises(MmioError):
            mmio.write(REG_HIT_COUNT, 5)

    def test_value_must_fit_32_bits(self):
        mmio = MemoMmio()
        with pytest.raises(MmioError):
            mmio.write(REG_MASK_VECTOR, 1 << 32)
        with pytest.raises(MmioError):
            mmio.write(REG_MASK_VECTOR, -1)

    def test_counters_come_from_callables(self):
        hits = {"n": 7}
        mmio = MemoMmio(hit_count=lambda: hits["n"], lookup_count=lambda: 10)
        assert mmio.read(REG_HIT_COUNT) == 7
        assert mmio.read(REG_LOOKUP_COUNT) == 10
        hits["n"] = 8
        assert mmio.read(REG_HIT_COUNT) == 8

    def test_counters_saturate_at_32_bits(self):
        mmio = MemoMmio(hit_count=lambda: 1 << 40)
        assert mmio.read(REG_HIT_COUNT) == 0xFFFF_FFFF


class TestThresholdRegister:
    def test_threshold_stored_as_ieee_bits(self):
        mmio = MemoMmio()
        mmio.set_threshold(0.5)
        assert mmio.read(REG_THRESHOLD) == float32_to_bits(0.5)
        assert mmio.threshold == 0.5

    def test_negative_threshold_rejected(self):
        with pytest.raises(MmioError):
            MemoMmio().set_threshold(-1.0)


class TestControlRegister:
    def test_set_control_individual_bits(self):
        mmio = MemoMmio()
        mmio.set_control(power_gate=True)
        assert mmio.power_gated
        assert mmio.enabled  # unrelated bits untouched
        mmio.set_control(enable=False, update_on_error=True)
        assert not mmio.enabled
        assert mmio.update_on_error
        assert mmio.power_gated

    def test_raw_control_bit_layout(self):
        mmio = MemoMmio()
        mmio.write(
            REG_CONTROL,
            CTRL_ENABLE | CTRL_COMMUTATIVE | CTRL_POWER_GATE | CTRL_UPDATE_ON_ERROR,
        )
        assert mmio.enabled and mmio.commutative
        assert mmio.power_gated and mmio.update_on_error


class TestStatusRegister:
    def test_hit_sets_sticky_flag(self):
        mmio = MemoMmio()
        assert mmio.read(REG_STATUS) == 0
        mmio.record_hit()
        assert mmio.read(REG_STATUS) == 1

    def test_any_write_clears_flag(self):
        mmio = MemoMmio()
        mmio.record_hit()
        mmio.write(REG_STATUS, 0xDEAD)
        assert mmio.read(REG_STATUS) == 0


class TestNonFiniteThresholdRejected:
    """Regression: NaN passed ``set_threshold``'s bare ``< 0.0`` check."""

    @pytest.mark.parametrize(
        "threshold", [float("nan"), float("inf"), float("-inf")]
    )
    def test_set_threshold_rejects_non_finite(self, threshold):
        with pytest.raises(MmioError):
            MemoMmio().set_threshold(threshold)
