"""Tests for the memoization FIFO."""

import pytest

from repro.errors import MemoizationError
from repro.memo.fifo import MemoFifo
from repro.memo.matching import MatchOutcome, MatchingConstraint

EXACT = MatchingConstraint(threshold=0.0)
APPROX = MatchingConstraint(threshold=0.5)


class TestInsertAndReplacement:
    def test_insert_grows_until_depth(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 1.0), 2.0)
        assert len(fifo) == 1
        fifo.insert(add_op, (2.0, 2.0), 4.0)
        assert len(fifo) == 2

    def test_fifo_replacement_evicts_oldest(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 1.0), 2.0)
        fifo.insert(add_op, (2.0, 2.0), 4.0)
        fifo.insert(add_op, (3.0, 3.0), 6.0)
        entry, _ = fifo.search(EXACT, add_op, (1.0, 1.0))
        assert entry is None  # oldest evicted
        entry, _ = fifo.search(EXACT, add_op, (2.0, 2.0))
        assert entry is not None

    def test_depth_one(self, add_op):
        fifo = MemoFifo(depth=1)
        fifo.insert(add_op, (1.0, 1.0), 2.0)
        fifo.insert(add_op, (2.0, 2.0), 4.0)
        assert len(fifo) == 1
        assert fifo.entries[0].result == 4.0

    def test_invalid_depth_rejected(self):
        with pytest.raises(MemoizationError):
            MemoFifo(depth=0)

    def test_clear(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 1.0), 2.0)
        fifo.clear()
        assert len(fifo) == 0

    def test_iteration_newest_first(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 1.0), 2.0)
        fifo.insert(add_op, (2.0, 2.0), 4.0)
        results = [entry.result for entry in fifo]
        assert results == [4.0, 2.0]


class TestSearch:
    def test_exact_hit(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        entry, outcome = fifo.search(EXACT, add_op, (1.0, 2.0))
        assert entry.result == 3.0
        assert outcome is MatchOutcome.EXACT

    def test_miss_on_empty(self, add_op):
        fifo = MemoFifo(depth=2)
        entry, outcome = fifo.search(EXACT, add_op, (1.0, 2.0))
        assert entry is None
        assert outcome is MatchOutcome.MISS

    def test_approximate_hit_returns_stored_result(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        entry, outcome = fifo.search(APPROX, add_op, (1.2, 2.1))
        assert entry.result == 3.0
        assert outcome is MatchOutcome.APPROXIMATE

    def test_newest_matching_entry_wins(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        fifo.insert(add_op, (1.1, 2.1), 3.2)
        entry, _ = fifo.search(APPROX, add_op, (1.05, 2.05))
        assert entry.result == 3.2  # both match; newest preferred

    def test_opcode_is_part_of_the_context(self, add_op, sub_op):
        # SUB shares the ADD unit; its entry must not satisfy an ADD lookup.
        fifo = MemoFifo(depth=2)
        fifo.insert(sub_op, (5.0, 3.0), 2.0)
        entry, outcome = fifo.search(EXACT, add_op, (5.0, 3.0))
        assert entry is None
        assert outcome is MatchOutcome.MISS

    def test_same_operands_different_opcodes_coexist(self, add_op, sub_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(sub_op, (5.0, 3.0), 2.0)
        fifo.insert(add_op, (5.0, 3.0), 8.0)
        entry, _ = fifo.search(EXACT, add_op, (5.0, 3.0))
        assert entry.result == 8.0
        entry, _ = fifo.search(EXACT, sub_op, (5.0, 3.0))
        assert entry.result == 2.0

    def test_commuted_search(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 2.0), 3.0)
        entry, outcome = fifo.search(EXACT, add_op, (2.0, 1.0))
        assert entry is not None
        assert outcome is MatchOutcome.COMMUTED


class TestPreload:
    def test_preload_entries(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.preload([(add_op, (0.0, 0.0), 0.0), (add_op, (1.0, 1.0), 2.0)])
        entry, _ = fifo.search(EXACT, add_op, (1.0, 1.0))
        assert entry.result == 2.0

    def test_preload_respects_depth(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.preload(
            [(add_op, (float(i), float(i)), 2.0 * i) for i in range(5)]
        )
        assert len(fifo) == 2


class TestRestore:
    def test_restore_replaces_contents_oldest_first(self, add_op, mul_op):
        from repro.memo.fifo import FifoEntry

        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (9.0, 9.0), 18.0)
        fifo.restore(
            [
                FifoEntry(add_op, (1.0, 1.0), 2.0),
                FifoEntry(mul_op, (2.0, 2.0), 4.0),
            ]
        )
        assert len(fifo) == 2
        # restore() receives oldest-first: the next insert evicts (1,1).
        fifo.insert(add_op, (3.0, 3.0), 6.0)
        entry, _ = fifo.search(EXACT, add_op, (1.0, 1.0))
        assert entry is None
        entry, _ = fifo.search(EXACT, mul_op, (2.0, 2.0))
        assert entry is not None

    def test_restore_empty_clears(self, add_op):
        fifo = MemoFifo(depth=2)
        fifo.insert(add_op, (1.0, 1.0), 2.0)
        fifo.restore([])
        assert len(fifo) == 0
