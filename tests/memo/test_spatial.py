"""Tests for the spatial memoization baseline [20]."""

import pytest

from repro.config import MemoConfig
from repro.errors import MemoizationError
from repro.memo.spatial import (
    SpatialMemoizationUnit,
    spatial_reuse_rate_for_streams,
)


def always_error():
    return True


def never_error():
    return False


class TestSpatialExecution:
    def test_matching_lanes_reuse_strong_result(self, add_op):
        unit = SpatialMemoizationUnit(4, MemoConfig(threshold=0.0))
        outcomes = unit.execute_simd(
            add_op, [(1.0, 2.0), (1.0, 2.0), (3.0, 4.0), (1.0, 2.0)]
        )
        assert [o.reused for o in outcomes] == [False, True, False, True]
        assert outcomes[1].result == 3.0
        assert outcomes[2].result == 7.0

    def test_strong_lane_never_reuses(self, add_op):
        unit = SpatialMemoizationUnit(2)
        outcomes = unit.execute_simd(add_op, [(1.0, 1.0), (1.0, 1.0)])
        assert not outcomes[0].reused
        assert outcomes[1].reused

    def test_approximate_broadcast(self, add_op):
        unit = SpatialMemoizationUnit(2, MemoConfig(threshold=0.5))
        outcomes = unit.execute_simd(add_op, [(1.0, 2.0), (1.3, 2.2)])
        assert outcomes[1].reused
        assert outcomes[1].result == 3.0  # the strong lane's result

    def test_error_masked_on_reusing_lane(self, add_op):
        unit = SpatialMemoizationUnit(2)
        outcomes = unit.execute_simd(
            add_op,
            [(1.0, 2.0), (1.0, 2.0)],
            error_samplers=[never_error, always_error],
        )
        assert outcomes[1].error_masked
        assert not outcomes[1].recovery_triggered
        assert unit.stats.errors_masked == 1

    def test_error_recovered_on_mismatching_lane(self, add_op):
        unit = SpatialMemoizationUnit(2)
        outcomes = unit.execute_simd(
            add_op,
            [(1.0, 2.0), (9.0, 9.0)],
            error_samplers=[never_error, always_error],
        )
        assert outcomes[1].recovery_triggered
        assert unit.stats.errors_recovered == 1

    def test_reuse_rate_statistic(self, add_op):
        unit = SpatialMemoizationUnit(4)
        unit.execute_simd(add_op, [(1.0, 1.0)] * 4)  # 3 weak reuse
        unit.execute_simd(
            add_op, [(1.0, 1.0), (2.0, 2.0), (1.0, 1.0), (3.0, 3.0)]
        )  # 1 of 3 weak reuses
        assert unit.stats.reuse_rate == pytest.approx(4 / 6)

    def test_lane_count_validation(self, add_op):
        with pytest.raises(MemoizationError):
            SpatialMemoizationUnit(1)
        unit = SpatialMemoizationUnit(2)
        with pytest.raises(MemoizationError):
            unit.execute_simd(add_op, [(1.0, 2.0)])
        with pytest.raises(MemoizationError):
            unit.execute_simd(
                add_op, [(1.0, 2.0), (1.0, 2.0)], error_samplers=[never_error]
            )


class TestStreamHelper:
    def test_uniform_streams_reuse_fully(self, mul_op):
        streams = [[(2.0, 3.0)] * 5 for _ in range(4)]
        stats = spatial_reuse_rate_for_streams(mul_op, streams)
        assert stats.reuse_rate == 1.0
        assert stats.simd_issues == 5

    def test_disjoint_streams_never_reuse(self, mul_op):
        streams = [
            [(float(lane), float(i)) for i in range(5)] for lane in range(4)
        ]
        stats = spatial_reuse_rate_for_streams(mul_op, streams)
        assert stats.reuse_rate == 0.0

    def test_length_mismatch_rejected(self, mul_op):
        with pytest.raises(MemoizationError):
            spatial_reuse_rate_for_streams(
                mul_op, [[(1.0, 1.0)] * 3, [(1.0, 1.0)] * 2]
            )
