"""Snapshot-delta algebra: exact live-view reconstruction.

The load-bearing property: feeding a shard's deltas to
:class:`ShardDeltaFold` in any order, with any duplication, reconstructs
the snapshot the final delta was taken from bit-identically — and the
merged multi-shard live view equals the final merged registry.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.monitor.delta import (
    DELTA_SCHEMA,
    ShardDeltaFold,
    diff_snapshots,
    fold_shard_views,
)
from repro.telemetry.registry import MetricsSnapshot
from repro.telemetry.sinks import merge_snapshots

BUCKETS = [1.0, 4.0, 16.0]

paths = st.sampled_from(
    ["cu0.sc0.fpu.ADD.memo.hits", "cu0.sc0.fpu.ADD.ops", "cu1.sc3.fpu.MUL.ops"]
)
gauge_paths = st.sampled_from(["host.depth", "host.load"])
hist_paths = st.sampled_from(["cu0.lat", "cu1.lat"])


@st.composite
def snapshot_sequences(draw):
    """A monotone sequence of cumulative snapshots, as one shard's
    registry would evolve: counters only grow, histogram counts only
    grow, gauges move freely."""
    steps = draw(st.integers(min_value=1, max_value=6))
    counters = {}
    gauges = {}
    hists = {}
    states = []
    for _ in range(steps):
        for path in draw(st.lists(paths, max_size=3)):
            # Strictly positive increments: a counter stuck at zero is
            # (by design) indistinguishable from an absent one on the wire.
            counters[path] = counters.get(path, 0) + draw(
                st.integers(min_value=1, max_value=100)
            )
        for path in draw(st.lists(gauge_paths, max_size=2)):
            gauges[path] = draw(
                st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
                )
            )
        for path in draw(st.lists(hist_paths, max_size=2)):
            hist = hists.setdefault(
                path,
                {
                    "buckets": list(BUCKETS),
                    "counts": [0] * (len(BUCKETS) + 1),
                    "count": 0,
                    "total": 0.0,
                },
            )
            bucket = draw(st.integers(min_value=0, max_value=len(BUCKETS)))
            hist["counts"][bucket] += 1
            hist["count"] += 1
            hist["total"] += draw(
                st.floats(min_value=0, max_value=50, allow_nan=False, width=32)
            )
        states.append(
            MetricsSnapshot(
                counters=dict(counters),
                gauges=dict(gauges),
                histograms={
                    path: {
                        "buckets": list(h["buckets"]),
                        "counts": list(h["counts"]),
                        "count": h["count"],
                        "total": h["total"],
                    }
                    for path, h in hists.items()
                },
            )
        )
    return states


def shard_deltas(states):
    previous = None
    deltas = []
    for seq, state in enumerate(states):
        deltas.append(diff_snapshots(previous, state, seq))
        previous = state
    return deltas


class TestDiffAndFold:
    def test_first_delta_is_everything(self):
        snap = MetricsSnapshot(counters={"a.ops": 3}, gauges={"g": 2.0})
        delta = diff_snapshots(None, snap, 0)
        assert delta["schema"] == DELTA_SCHEMA
        assert delta["counters"] == {"a.ops": 3}
        assert delta["gauges"] == {"g": 2.0}

    def test_counter_increments_not_cumulative(self):
        first = MetricsSnapshot(counters={"a.ops": 3})
        second = MetricsSnapshot(counters={"a.ops": 10})
        delta = diff_snapshots(first, second, 1)
        assert delta["counters"] == {"a.ops": 7}

    def test_duplicate_seq_ignored(self):
        snap = MetricsSnapshot(counters={"a.ops": 5})
        delta = diff_snapshots(None, snap, 0)
        fold = ShardDeltaFold()
        assert fold.apply(delta) is True
        assert fold.apply(delta) is False
        assert fold.snapshot().counters == {"a.ops": 5}

    def test_unknown_schema_rejected(self):
        fold = ShardDeltaFold()
        with pytest.raises(TelemetryError):
            fold.apply({"schema": 99, "seq": 0})

    def test_bucket_change_rejected(self):
        fold = ShardDeltaFold()
        hist = {"buckets": [1.0], "counts": [1, 0], "count": 1, "total": 0.5}
        fold.apply({"schema": 1, "seq": 0, "histograms": {"h": dict(hist)}})
        hist["buckets"] = [2.0]
        with pytest.raises(TelemetryError):
            fold.apply({"schema": 1, "seq": 1, "histograms": {"h": hist}})

    def test_seal_wins_over_partial_stream(self):
        final = MetricsSnapshot(counters={"a.ops": 42})
        fold = ShardDeltaFold()
        fold.apply({"schema": 1, "seq": 0, "counters": {"a.ops": 1}})
        fold.seal(final)
        assert fold.snapshot() == final


class TestLiveViewProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        shards=st.lists(snapshot_sequences(), min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=2**31),
        duplicate=st.booleans(),
    )
    def test_any_order_any_duplication_reconstructs_final(
        self, shards, seed, duplicate
    ):
        """Folded live view == merged final snapshots, bit-identically,
        under shuffled and duplicated delta delivery."""
        import random

        rng = random.Random(seed)
        folds = []
        for states in shards:
            deltas = shard_deltas(states)
            if duplicate:
                deltas = deltas + [rng.choice(deltas)]
            rng.shuffle(deltas)
            fold = ShardDeltaFold()
            for delta in deltas:
                fold.apply(delta)
            assert fold.snapshot() == states[-1]
            folds.append(fold)
        live = fold_shard_views(folds)
        finals = [
            states[-1]
            for states in shards
            if states[-1].counters
            or states[-1].gauges
            or states[-1].histograms
        ]
        if not finals:
            assert live is None
        else:
            merged = merge_snapshots(finals)
            assert live == merged
            assert live.to_dict() == merged.to_dict()

    @settings(max_examples=30, deadline=None)
    @given(shards=st.lists(snapshot_sequences(), min_size=1, max_size=3))
    def test_sealed_view_always_exact(self, shards):
        """With the authoritative seal, even a lossy delta stream (only
        the first delta arrives) reconstructs the final exactly."""
        folds = []
        for states in shards:
            deltas = shard_deltas(states)
            fold = ShardDeltaFold()
            fold.apply(deltas[0])
            fold.seal(states[-1])
            folds.append(fold)
        finals = [
            states[-1]
            for states in shards
            if states[-1].counters
            or states[-1].gauges
            or states[-1].histograms
        ]
        live = fold_shard_views(folds)
        if finals:
            assert live == merge_snapshots(finals)
