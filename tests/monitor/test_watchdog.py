"""Watchdog detection driven by a deterministic fake clock."""

import pytest

from repro.errors import ConfigError
from repro.monitor.watchdog import Watchdog, WatchdogAlert


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestValidation:
    def test_stall_after_must_be_positive(self):
        with pytest.raises(ConfigError):
            Watchdog(stall_after_s=0)

    def test_slow_factor_must_exceed_one(self):
        with pytest.raises(ConfigError):
            Watchdog(slow_factor=1.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            Watchdog(policy="panic")


class TestStallDetection:
    def test_quiet_shard_fires_once(self):
        clock = FakeClock()
        dog = Watchdog(stall_after_s=5.0, clock=clock)
        dog.shard_started("s1")
        clock.advance(4.0)
        assert dog.check() == []
        clock.advance(2.0)
        alerts = dog.check()
        assert [a.kind for a in alerts] == ["stalled"]
        assert alerts[0].shard == "s1"
        assert alerts[0].elapsed_s == pytest.approx(6.0)
        # No alert spam: a second check does not re-fire.
        assert dog.check() == []

    def test_beat_rearms_stall(self):
        clock = FakeClock()
        dog = Watchdog(stall_after_s=5.0, clock=clock)
        dog.shard_started("s1")
        clock.advance(6.0)
        assert len(dog.check()) == 1
        dog.shard_beat("s1")
        assert dog.check() == []
        clock.advance(6.0)
        assert [a.kind for a in dog.check()] == ["stalled"]

    def test_finished_shard_never_stalls(self):
        clock = FakeClock()
        dog = Watchdog(stall_after_s=5.0, clock=clock)
        dog.shard_started("s1")
        dog.shard_finished("s1", wall_s=1.0)
        clock.advance(60.0)
        assert dog.check() == []
        assert dog.in_flight == 0

    def test_cancel_policy_marks_alert(self):
        clock = FakeClock()
        dog = Watchdog(stall_after_s=1.0, policy="cancel", clock=clock)
        dog.shard_started("s1")
        clock.advance(2.0)
        alerts = dog.check()
        assert alerts[0].cancel is True

    def test_warn_policy_does_not_cancel(self):
        clock = FakeClock()
        dog = Watchdog(stall_after_s=1.0, policy="warn", clock=clock)
        dog.shard_started("s1")
        clock.advance(2.0)
        assert dog.check()[0].cancel is False


class TestSlowOutliers:
    def _seed_population(self, dog, walls=(1.0, 1.0, 1.0)):
        for i, wall in enumerate(walls):
            dog.shard_started(f"done{i}")
            dog.shard_finished(f"done{i}", wall_s=wall)

    def test_not_armed_below_min_samples(self):
        clock = FakeClock()
        dog = Watchdog(
            stall_after_s=1e9, slow_factor=2.0, min_samples=3, clock=clock
        )
        self._seed_population(dog, walls=(1.0, 1.0))
        dog.shard_started("s1")
        clock.advance(100.0)
        assert dog.check() == []
        assert dog.median_wall_s() is None

    def test_outlier_flagged_once_vs_median(self):
        clock = FakeClock()
        dog = Watchdog(
            stall_after_s=1e9, slow_factor=4.0, min_samples=3, clock=clock
        )
        self._seed_population(dog)
        assert dog.median_wall_s() == 1.0
        dog.shard_started("slowpoke")
        clock.advance(3.9)
        assert dog.check() == []
        clock.advance(0.2)
        alerts = dog.check()
        assert [a.kind for a in alerts] == ["slow"]
        assert alerts[0].shard == "slowpoke"
        assert alerts[0].threshold_s == pytest.approx(4.0)
        assert dog.check() == []

    def test_alert_is_plain_data(self):
        alert = WatchdogAlert(
            kind="slow", shard="s", elapsed_s=9.0, threshold_s=4.0
        )
        assert alert.cancel is False
