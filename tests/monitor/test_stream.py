"""The JSONL event stream: append, tail, tolerate torn lines."""

import json

import pytest

from repro.errors import TelemetryError
from repro.monitor.events import (
    MONITOR_STREAM_SCHEMA,
    MonitorEvent,
    MonitorEventKind,
)
from repro.monitor.stream import EventStreamWriter, read_event_stream
from repro.utils.io import JsonlAppender, read_jsonl_records


def _event(seq, kind=MonitorEventKind.HEARTBEAT, shard="s1", payload=None):
    return MonitorEvent(
        seq=seq, ts_s=0.5 * seq, kind=kind, shard=shard, payload=payload or {}
    )


class TestEventStream:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        writer = EventStreamWriter(path)
        writer.write_header("run:test", extra={"shards": 2})
        writer.write_event(_event(0, MonitorEventKind.SHARD_STARTED))
        writer.write_event(_event(1, payload={"elapsed_s": 0.5}))
        writer.close()
        headers, events = read_event_stream(path)
        assert len(headers) == 1
        assert headers[0]["schema"] == MONITOR_STREAM_SCHEMA
        assert headers[0]["label"] == "run:test"
        assert headers[0]["shards"] == 2
        assert [e.kind for e in events] == [
            MonitorEventKind.SHARD_STARTED,
            MonitorEventKind.HEARTBEAT,
        ]
        assert events[1].payload == {"elapsed_s": 0.5}

    def test_readable_mid_stream(self, tmp_path):
        """A reader sees whole records while the writer is still open."""
        path = str(tmp_path / "events.jsonl")
        writer = EventStreamWriter(path)
        writer.write_header("run:test")
        writer.write_event(_event(0))
        headers, events = read_event_stream(path)
        assert len(headers) == 1 and len(events) == 1
        writer.close()

    def test_torn_final_line_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        writer = EventStreamWriter(path)
        writer.write_header("run:test")
        writer.write_event(_event(0))
        writer.close()
        with open(path, "a") as handle:
            handle.write('{"type": "event", "seq": 1, "ts')  # torn record
        headers, events = read_event_stream(path)
        assert len(events) == 1

    def test_unknown_record_types_ignored(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"type": "future-extension", "x": 1}) + "\n")
        headers, events = read_event_stream(path)
        assert headers == [] and events == []

    def test_missing_file_is_empty(self, tmp_path):
        headers, events = read_event_stream(str(tmp_path / "absent.jsonl"))
        assert headers == [] and events == []


class TestMonitorEventCodec:
    def test_to_dict_from_dict_inverse(self):
        event = _event(3, MonitorEventKind.SHARD_SLOW, payload={"a": 1})
        assert MonitorEvent.from_dict(event.to_dict()) == event

    def test_malformed_record_raises(self):
        with pytest.raises(TelemetryError):
            MonitorEvent.from_dict({"seq": "x"})
        with pytest.raises(TelemetryError):
            MonitorEvent.from_dict({"seq": 0, "ts_s": 0.0, "kind": "no-such"})


class TestJsonlAppender:
    def test_append_and_read(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with JsonlAppender(path) as appender:
            appender.append({"a": 1})
            appender.append({"b": 2})
        assert read_jsonl_records(path) == [{"a": 1}, {"b": 2}]

    def test_append_mode_preserves_existing(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with JsonlAppender(path) as appender:
            appender.append({"a": 1})
        with JsonlAppender(path) as appender:
            appender.append({"b": 2})
        assert len(read_jsonl_records(path)) == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with open(path, "w") as handle:
            handle.write('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl_records(path) == [{"a": 1}, {"b": 2}]
