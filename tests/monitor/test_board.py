"""Board rendering: live monitor and checkpointed-manifest views."""

from repro.monitor.board import render_board, render_manifest_board
from repro.monitor.run import MonitorConfig, RunMonitor
from repro.telemetry.registry import MetricsSnapshot


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def driven_monitor():
    clock = FakeClock()
    monitor = RunMonitor(
        MonitorConfig(heartbeat_interval_s=0.1, stall_after_s=100.0),
        label="run:sobel",
        clock=clock,
    )
    monitor.attach(["Sobel seed 1", "Sobel seed 2"], workers=2, serial=False)
    channel = monitor.channel(None)
    channel.put({"kind": "shard_started", "shard": "Sobel seed 1"})
    channel.put({"kind": "heartbeat", "shard": "Sobel seed 1"})
    snap = MetricsSnapshot(
        counters={
            "cu0.sc0.fpu.ADD.memo.lookups": 100,
            "cu0.sc0.fpu.ADD.memo.hits": 25,
            "cu0.sc0.fpu.ADD.ops": 100,
        }
    )
    channel.put(
        {
            "kind": "shard_finished",
            "shard": "Sobel seed 1",
            "wall_s": 2.0,
            "final_snapshot": snap.to_dict(),
        }
    )
    clock.advance(2.0)
    monitor.pump()
    return monitor


class TestRenderBoard:
    def test_headline_counts_and_hit_rate(self):
        board = render_board(driven_monitor())
        assert "== live board: run:sobel ==" in board
        assert "shards 1/2 done" in board
        assert "1 pending" in board
        assert "live hit rate 25.0%" in board
        assert "Sobel seed 1" in board
        assert "done" in board

    def test_empty_monitor_renders(self):
        monitor = RunMonitor(
            MonitorConfig(heartbeat_interval_s=0.1), label="empty",
            clock=FakeClock(),
        )
        board = render_board(monitor)
        assert "shards 0/0 done" in board


class TestRenderManifestBoard:
    def test_without_progress_payload(self):
        board = render_manifest_board(
            {"name": "demo", "status": "running", "completed": 1, "total": 4}
        )
        assert "== campaign board: demo ==" in board
        assert "1/4 shards durable" in board
        assert "no per-shard progress" in board

    def test_with_progress_payload(self):
        board = render_manifest_board(
            {
                "name": "demo",
                "status": "running",
                "completed": 1,
                "total": 4,
                "cached_at_start": 1,
                "computed": 1,
                "updated_utc": "2026-08-09T01:00:00Z",
                "progress": {
                    "counts": {"done": 1, "running": 1, "pending": 2},
                    "median_wall_s": 2.0,
                    "eta_s": 90.0,
                    "heartbeats": 7,
                    "stalls": 1,
                    "shards": [
                        {
                            "label": "Sobel rate=0.01 seed=1",
                            "status": "done",
                            "beats": 3,
                            "wall_s": 2.0,
                            "cpu_time_s": 1.8,
                            "max_rss_kb": 40960,
                            "throughput_ops_s": 50.0,
                        },
                        {"label": "Sobel rate=0.01 seed=2",
                         "status": "running"},
                    ],
                },
            }
        )
        assert "done 1 | pending 2 | running 1" in board
        assert "median shard wall 2s" in board
        assert "eta 1m30s" in board
        assert "7 heartbeats" in board
        assert "1 stalls" in board
        assert "Sobel rate=0.01 seed=1" in board
        assert "40960" in board
