"""Bench trend tracking: history archive, direction-aware gating."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.monitor.trend import (
    compare_bench,
    load_history,
    metric_direction,
    record_bench,
)


def make_summary(metrics, bench="Sobel", created="2026-08-09T01:00:00Z",
                 describe="abc1234"):
    return {
        "kind": "bench-telemetry",
        "created_utc": created,
        "git_describe": describe,
        "benches": [
            {"bench": bench, "duration_s": 1.0, "metrics": dict(metrics)}
        ],
    }


def write_summary(path, metrics, **kwargs):
    path.write_text(json.dumps(make_summary(metrics, **kwargs)))
    return str(path)


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name", ["speedup_Haar", "memo.hit_rate", "throughput", "ops_per_s"]
    )
    def test_higher_better(self, name):
        assert metric_direction(name) == 1

    @pytest.mark.parametrize(
        "name", ["duration_s", "wall_s", "replay_time_s", "p99_latency"]
    )
    def test_lower_better(self, name):
        assert metric_direction(name) == -1

    def test_unknown_direction_is_info(self):
        assert metric_direction("num_shards") == 0


class TestRecordAndHistory:
    def test_record_archives_sorted_by_timestamp(self, tmp_path):
        history = str(tmp_path / "history")
        old = write_summary(
            tmp_path / "old.json", {"speedup": 1.0},
            created="2026-08-08T01:00:00Z", describe="aaa",
        )
        new = write_summary(
            tmp_path / "new.json", {"speedup": 2.0},
            created="2026-08-09T01:00:00Z", describe="bbb",
        )
        record_bench(new, history)
        record_bench(old, history)
        records = load_history(history)
        assert [s["git_describe"] for _, s in records] == ["aaa", "bbb"]
        assert load_history(history, last=1)[0][1]["git_describe"] == "bbb"

    def test_record_rejects_non_bench_payload(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ReproError):
            record_bench(str(bogus), str(tmp_path / "history"))

    def test_missing_history_dir_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent")) == []


class TestCompare:
    def _seed_history(self, tmp_path, metrics_list):
        history = str(tmp_path / "history")
        for i, metrics in enumerate(metrics_list):
            path = write_summary(
                tmp_path / f"seed{i}.json", metrics,
                created=f"2026-08-0{i + 1}T01:00:00Z", describe=f"rev{i}",
            )
            record_bench(path, history)
        return history

    def test_no_history_reports_nothing(self, tmp_path):
        current = write_summary(tmp_path / "cur.json", {"speedup": 1.0})
        report = compare_bench(current, str(tmp_path / "history"))
        assert report.baseline_records == 0
        assert report.ok
        assert "no history" in report.to_text()

    def test_drop_in_higher_better_metric_regresses(self, tmp_path):
        history = self._seed_history(
            tmp_path, [{"speedup": 1.0}, {"speedup": 1.1}, {"speedup": 0.9}]
        )
        current = write_summary(tmp_path / "cur.json", {"speedup": 0.14})
        report = compare_bench(current, history, threshold=0.20)
        assert not report.ok
        assert [d.name for d in report.regressions] == ["Sobel::speedup"]
        # Baseline is the median of history, 1.0.
        assert report.regressions[0].baseline == 1.0
        assert report.regressions[0].change == pytest.approx(-0.86)
        assert "FAIL" in report.to_text()

    def test_rise_in_lower_better_metric_regresses(self, tmp_path):
        history = self._seed_history(tmp_path, [{"replay_time_s": 1.0}])
        current = write_summary(tmp_path / "cur.json", {"replay_time_s": 1.5})
        report = compare_bench(current, history, threshold=0.20)
        assert [d.name for d in report.regressions] == ["Sobel::replay_time_s"]

    def test_improvement_and_within_threshold(self, tmp_path):
        history = self._seed_history(tmp_path, [{"speedup": 1.0}])
        current = write_summary(tmp_path / "cur.json", {"speedup": 1.5})
        report = compare_bench(current, history, threshold=0.20)
        speedups = {d.name: d.verdict for d in report.diffs}
        assert speedups["Sobel::speedup"] == "improved"
        current = write_summary(tmp_path / "cur2.json", {"speedup": 1.1})
        report = compare_bench(current, history, threshold=0.20)
        speedups = {d.name: d.verdict for d in report.diffs}
        assert speedups["Sobel::speedup"] == "ok"
        assert report.ok

    def test_unknown_direction_never_gates(self, tmp_path):
        history = self._seed_history(tmp_path, [{"num_shards": 8}])
        current = write_summary(tmp_path / "cur.json", {"num_shards": 1})
        report = compare_bench(current, history)
        assert report.ok
        verdicts = {d.name: d.verdict for d in report.diffs}
        assert verdicts["Sobel::num_shards"] == "info"

    def test_new_and_missing_metrics_reported(self, tmp_path):
        history = self._seed_history(tmp_path, [{"speedup": 1.0, "old": 1}])
        current = write_summary(tmp_path / "cur.json", {"speedup": 1.0, "fresh": 2})
        report = compare_bench(current, history)
        assert report.new_metrics == ["Sobel::fresh"]
        assert report.missing_metrics == ["Sobel::old"]
        assert report.ok

    def test_threshold_must_be_positive(self, tmp_path):
        current = write_summary(tmp_path / "cur.json", {"speedup": 1.0})
        with pytest.raises(ReproError):
            compare_bench(current, str(tmp_path / "history"), threshold=0)


class TestBenchCli:
    """`repro bench compare` must exit nonzero on an injected regression."""

    def test_compare_gates_on_injected_regression(self, tmp_path, capsys):
        history = str(tmp_path / "history")
        good = write_summary(
            tmp_path / "good.json", {"speedup_Haar": 1.0},
            created="2026-08-08T01:00:00Z",
        )
        assert main(["bench", "record", "--telemetry", good,
                     "--history", history]) == 0
        bad = write_summary(tmp_path / "bad.json", {"speedup_Haar": 0.14})
        rc = main(["bench", "compare", "--telemetry", bad,
                   "--history", history])
        assert rc == 1
        assert "regressed" in capsys.readouterr().out

    def test_report_only_never_gates(self, tmp_path, capsys):
        history = str(tmp_path / "history")
        good = write_summary(tmp_path / "good.json", {"speedup_Haar": 1.0})
        main(["bench", "record", "--telemetry", good, "--history", history])
        bad = write_summary(tmp_path / "bad.json", {"speedup_Haar": 0.14})
        rc = main(["bench", "compare", "--telemetry", bad,
                   "--history", history, "--report-only"])
        assert rc == 0
        assert "FAIL" in capsys.readouterr().out

    def test_compare_writes_json_report(self, tmp_path):
        history = str(tmp_path / "history")
        good = write_summary(tmp_path / "good.json", {"speedup_Haar": 1.0})
        main(["bench", "record", "--telemetry", good, "--history", history])
        out = tmp_path / "report.json"
        rc = main(["bench", "compare", "--telemetry", good,
                   "--history", history, "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["baseline_records"] == 1
