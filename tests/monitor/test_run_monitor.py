"""Host-side aggregator: ingestion, watchdog escalation, progress."""

import pytest

from repro.errors import ConfigError
from repro.monitor.events import MonitorEventKind
from repro.monitor.run import (
    MonitorConfig,
    RunMonitor,
    capture_monitor,
    current_monitor,
)
from repro.telemetry.registry import MetricsSnapshot


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_monitor(clock=None, **overrides) -> RunMonitor:
    defaults = dict(heartbeat_interval_s=0.1, stall_after_s=5.0)
    defaults.update(overrides)
    return RunMonitor(
        MonitorConfig(**defaults), label="test", clock=clock or FakeClock()
    )


class TestConfig:
    def test_heartbeat_interval_positive(self):
        with pytest.raises(ConfigError):
            MonitorConfig(heartbeat_interval_s=0)

    def test_policy_validated(self):
        with pytest.raises(ConfigError):
            MonitorConfig(policy="explode")


class TestIngestion:
    def _drive(self, monitor, records):
        channel = monitor.channel(None)
        for record in records:
            channel.put(record)
        monitor.pump()

    def test_lifecycle_updates_views_and_metrics(self):
        monitor = make_monitor()
        monitor.attach(["s1", "s2"], workers=1, serial=True)
        snap = MetricsSnapshot(counters={"cu0.sc0.fpu.ADD.ops": 7})
        self._drive(
            monitor,
            [
                {"kind": "shard_started", "shard": "s1", "pid": 123},
                {"kind": "heartbeat", "shard": "s1", "elapsed_s": 0.1},
                {
                    "kind": "shard_finished",
                    "shard": "s1",
                    "wall_s": 1.5,
                    "cpu_time_s": 1.2,
                    "max_rss_kb": 4096,
                    "final_snapshot": snap.to_dict(),
                },
            ],
        )
        view = monitor.shards["s1"]
        assert view.status == "done"
        assert view.beats == 1
        assert view.wall_s == 1.5
        assert view.cpu_time_s == 1.2
        assert view.max_rss_kb == 4096
        assert view.ops == 7
        assert view.throughput_ops_s == pytest.approx(7 / 1.5)
        assert monitor.counts()["done"] == 1
        assert monitor.counts()["pending"] == 1
        assert monitor.live_view() == snap
        registry = monitor.registry
        assert registry.value("monitor.shards.started") == 1
        assert registry.value("monitor.shards.finished") == 1
        assert registry.value("monitor.heartbeats") == 1

    def test_duplicate_deltas_counted_not_applied(self):
        monitor = make_monitor()
        monitor.attach(["s1"], workers=1, serial=True)
        delta = {
            "schema": 1,
            "seq": 0,
            "counters": {"a.ops": 5},
            "gauges": {},
            "histograms": {},
        }
        self._drive(
            monitor,
            [
                {"kind": "shard_started", "shard": "s1"},
                {"kind": "snapshot_delta", "shard": "s1", "delta": delta},
                {"kind": "snapshot_delta", "shard": "s1", "delta": delta},
            ],
        )
        assert monitor.live_view().counters == {"a.ops": 5}
        assert monitor.registry.value("monitor.duplicates") == 1

    def test_stall_event_and_recovery(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock, stall_after_s=1.0)
        monitor.attach(["s1"], workers=1, serial=True)
        self._drive(monitor, [{"kind": "shard_started", "shard": "s1"}])
        clock.advance(2.0)
        monitor.pump()
        assert monitor.shards["s1"].status == "stalled"
        kinds = [event.kind for event in monitor.events]
        assert MonitorEventKind.SHARD_STALLED in kinds
        assert monitor.cancel_requested is None
        # A late heartbeat recovers the shard.
        self._drive(monitor, [{"kind": "heartbeat", "shard": "s1"}])
        assert monitor.shards["s1"].status == "running"

    def test_cancel_policy_requests_cancellation(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock, stall_after_s=1.0, policy="cancel")
        monitor.attach(["s1"], workers=1, serial=True)
        self._drive(monitor, [{"kind": "shard_started", "shard": "s1"}])
        clock.advance(2.0)
        monitor.pump()
        assert monitor.cancel_requested == "s1"
        kinds = [event.kind for event in monitor.events]
        assert MonitorEventKind.SHARD_CANCELLED in kinds
        assert monitor.registry.value("monitor.cancellations") == 1

    def test_progress_payload_is_json_safe(self):
        import json

        clock = FakeClock()
        monitor = make_monitor(clock=clock, min_samples=1)
        monitor.attach(["s1", "s2"], workers=2, serial=False)
        self._drive(
            monitor,
            [
                {"kind": "shard_started", "shard": "s1"},
                {"kind": "shard_finished", "shard": "s1", "wall_s": 2.0},
            ],
        )
        progress = monitor.progress()
        json.dumps(progress)  # must not raise
        assert progress["counts"]["done"] == 1
        assert progress["median_wall_s"] == 2.0
        assert {shard["label"] for shard in progress["shards"]} == {"s1", "s2"}

    def test_finish_emits_summary_and_is_idempotent(self):
        monitor = make_monitor()
        monitor.attach(["s1"], workers=1, serial=True)
        monitor.finish()
        monitor.finish()
        kinds = [event.kind for event in monitor.events]
        assert kinds.count(MonitorEventKind.RUN_FINISHED) == 1


class TestAmbientMonitor:
    def test_capture_and_restore(self):
        assert current_monitor() is None
        monitor = make_monitor()
        with capture_monitor(monitor) as active:
            assert active is monitor
            assert current_monitor() is monitor
        assert current_monitor() is None
