"""Tests for the ASCII telemetry dashboard."""

from repro.telemetry.events import EventKind, EventRing
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.report import _per_cu_section, render_dashboard


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("cu0.sc0.fpu.ADD.memo.lookups").inc(100)
    reg.counter("cu0.sc0.fpu.ADD.memo.hits").inc(25)
    reg.counter("cu0.sc0.fpu.ADD.memo.misses").inc(75)
    reg.counter("cu0.sc0.fpu.ADD.memo.updates").inc(70)
    reg.counter("cu0.sc0.fpu.ADD.errors.injected").inc(8)
    reg.counter("cu0.sc0.fpu.ADD.ecu.recoveries").inc(6)
    reg.counter("cu0.sc0.fpu.ADD.ecu.masked").inc(2)
    reg.counter("cu0.sc0.fpu.ADD.ecu.recovery_cycles").inc(72)
    reg.gauge("energy.ADD.total_pj").set(123.4)
    reg.gauge("energy.ADD.datapath_pj").set(100.0)
    reg.counter("run.launches").inc()
    reg.counter("cu0.wavefronts").inc(3)
    return reg


class TestDashboard:
    def test_sections_present(self):
        text = render_dashboard(_populated_registry().snapshot())
        assert "Memoization" in text
        assert "hit rate" in text
        assert "ECU recovery" in text
        assert "Energy" in text
        assert "Run-level scalars" in text
        assert "ADD" in text

    def test_hit_rate_value_rendered(self):
        text = render_dashboard(_populated_registry().snapshot())
        assert "0.25" in text

    def test_event_tail_included_when_ring_given(self):
        ring = EventRing(8)
        ring.emit(EventKind.RECOVERY, "cu0.sc0.fpu.ADD", {"cycles": 12})
        text = render_dashboard(_populated_registry().snapshot(), ring)
        assert "Event stream tail" in text
        assert "recovery" in text

    def test_empty_snapshot_renders_placeholder(self):
        text = render_dashboard(MetricsRegistry().snapshot())
        assert "no metrics recorded" in text

    def test_title_used(self):
        text = render_dashboard(
            _populated_registry().snapshot(), title="telemetry: Sobel"
        )
        assert text.startswith("== telemetry: Sobel ==")


def _multi_cu_registry() -> MetricsRegistry:
    reg = _populated_registry()
    reg.counter("cu0.sc0.fpu.ADD.ops").inc(100)
    reg.counter("cu1.sc0.fpu.ADD.ops").inc(40)
    reg.counter("cu1.sc0.fpu.ADD.memo.lookups").inc(40)
    reg.counter("cu1.sc0.fpu.ADD.memo.hits").inc(10)
    reg.counter("cu1.sc0.fpu.ADD.ecu.recovery_cycles").inc(24)
    reg.counter("cu1.wavefronts").inc(1)
    return reg


class TestPerCuSection:
    def test_single_cu_device_is_suppressed(self):
        assert _per_cu_section(_populated_registry().snapshot()) is None
        assert "Per compute unit" not in render_dashboard(
            _populated_registry().snapshot()
        )

    def test_multi_cu_rollup_rows(self):
        text = _per_cu_section(_multi_cu_registry().snapshot())
        assert text is not None and "Per compute unit" in text
        lines = text.splitlines()
        cu0 = next(line for line in lines if line.startswith("cu0"))
        cu1 = next(line for line in lines if line.startswith("cu1"))
        # cu0: 100 ops, 100 lookups, 25 hits, 2 masked, 72 stall cycles.
        for value in ("100", "25", "0.25", "72"):
            assert value in cu0
        # cu1: 40 ops, 10/40 hits, 24 stall cycles.
        for value in ("40", "10", "0.25", "24"):
            assert value in cu1

    def test_section_appears_in_dashboard(self):
        text = render_dashboard(_multi_cu_registry().snapshot())
        assert "Per compute unit" in text

    def test_idle_cu_rows_are_dropped(self):
        reg = _multi_cu_registry()
        reg.counter("cu2.sc0.fpu.ADD.memo.lookups").inc(0)
        text = _per_cu_section(reg.snapshot())
        assert "cu2" not in text
