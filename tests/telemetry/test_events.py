"""Tests for the bounded structured-event stream."""

import pytest

from repro.errors import TelemetryError
from repro.gpu.trace import FpTraceCollector
from repro.isa.opcodes import opcode_by_mnemonic
from repro.telemetry.events import (
    EventKind,
    EventRing,
    TelemetryEvent,
    TraceEventSink,
)

ADD = opcode_by_mnemonic("ADD")


class TestEventRing:
    def test_append_below_capacity_keeps_everything(self):
        ring = EventRing(4)
        for i in range(3):
            ring.emit(EventKind.MEMO_HIT, f"src{i}")
        assert len(ring) == 3
        assert ring.dropped == 0
        assert [e.seq for e in ring] == [0, 1, 2]

    def test_overflow_drops_oldest(self):
        ring = EventRing(3)
        for i in range(7):
            ring.emit(EventKind.TIMING_ERROR, "fpu", {"i": i})
        assert len(ring) == 3
        assert ring.total == 7
        assert ring.dropped == 4
        assert [e.payload["i"] for e in ring] == [4, 5, 6]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TelemetryError):
            EventRing(0)

    def test_iter_kind_filters(self):
        ring = EventRing(10)
        ring.emit(EventKind.MEMO_HIT, "a")
        ring.emit(EventKind.RECOVERY, "b", {"cycles": 12})
        ring.emit(EventKind.MEMO_HIT, "c")
        hits = list(ring.iter_kind(EventKind.MEMO_HIT))
        assert [e.source for e in hits] == ["a", "c"]

    def test_clear_resets_all_state(self):
        ring = EventRing(2)
        for _ in range(5):
            ring.emit(EventKind.MEMO_MISS, "x")
        ring.clear()
        assert len(ring) == 0 and ring.total == 0 and ring.dropped == 0

    def test_event_to_dict_flattens_payload(self):
        event = TelemetryEvent(7, EventKind.RECOVERY, "cu0.sc1.fpu.ADD", {"cycles": 12})
        assert event.to_dict() == {
            "seq": 7,
            "kind": "recovery",
            "source": "cu0.sc1.fpu.ADD",
            "cycles": 12,
        }


class TestTraceEventSink:
    def test_implements_collector_protocol(self):
        ring = EventRing(8)
        sink = TraceEventSink(ring)
        sink.record(0, 3, ADD, (1.0, 2.0), 3.0)
        events = ring.to_list()
        assert len(events) == 1
        event = events[0]
        assert event.kind is EventKind.FP_OP
        assert event.source == "cu0.sc3"
        assert event.payload == {
            "opcode": "ADD",
            "operands": [1.0, 2.0],
            "result": 3.0,
        }

    def test_bounded_unlike_legacy_collector(self):
        ring = EventRing(2)
        sink = TraceEventSink(ring)
        for i in range(10):
            sink.record(0, 0, ADD, (float(i), 0.0), float(i))
        assert len(ring) == 2 and ring.dropped == 8

    def test_device_can_stream_fp_ops_into_ring(self, tiny_arch):
        from repro.config import SimConfig, TelemetryConfig
        from repro.gpu.executor import GpuExecutor
        from repro.kernels.api import Buffer

        config = SimConfig(
            arch=tiny_arch,
            telemetry=TelemetryConfig(
                enabled=True, events_capacity=64, record_fp_ops=True
            ),
        )
        executor = GpuExecutor(config)

        def k(ctx, buf):
            value = buf.load(ctx.global_id)
            yield ctx.fadd(value, 1.0)

        executor.run(k, 4, (Buffer.zeros(4),))
        fp_ops = list(executor.telemetry.events.iter_kind(EventKind.FP_OP))
        assert len(fp_ops) == 4


class TestLegacyTraceRingMode:
    def test_max_events_keeps_most_recent(self):
        collector = FpTraceCollector(max_events=3)
        for i in range(8):
            collector.record(0, 0, ADD, (float(i), 0.0), float(i))
        assert len(collector) == 3
        assert collector.dropped == 5
        assert [e.result for e in collector.events] == [5.0, 6.0, 7.0]

    def test_max_events_replay_api_still_works(self):
        collector = FpTraceCollector(max_events=4)
        for i in range(6):
            collector.record(0, i % 2, ADD, (float(i), 0.0), float(i))
        streams = collector.per_fpu_streams()
        assert sum(len(s) for s in streams.values()) == 4
        assert len(list(collector.iter_unit(ADD.unit))) == 4

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            FpTraceCollector(max_events=0)

    def test_capacity_mode_unchanged_drops_newest(self):
        collector = FpTraceCollector(capacity=2)
        for i in range(5):
            collector.record(0, 0, ADD, (float(i), 0.0), float(i))
        assert len(collector) == 2
        assert collector.dropped == 3
        assert [e.result for e in collector.events] == [0.0, 1.0]
