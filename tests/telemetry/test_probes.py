"""Probe wiring: registry counters mirror the simulator's own tallies,
and a disabled probe costs (nearly) nothing on the hot path."""

import time

from repro.config import (
    MemoConfig,
    SimConfig,
    TelemetryConfig,
    TimingConfig,
)
from repro.gpu.executor import GpuExecutor
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic
from repro.kernels.api import Buffer
from repro.memo.resilient import ResilientFpu
from repro.telemetry.events import EventKind
from repro.telemetry.probes import TelemetryHub

ADD = opcode_by_mnemonic("ADD")


def _kernel(ctx, buf):
    value = buf.load(ctx.global_id)
    total = yield ctx.fadd(value, 1.0)
    yield ctx.fmul(total, 2.0)


def _run(config):
    executor = GpuExecutor(config)
    executor.run(_kernel, 16, (Buffer.zeros(16),))
    return executor


class TestHubConstruction:
    def test_disabled_config_builds_no_hub(self, tiny_arch):
        config = SimConfig(arch=tiny_arch)
        executor = GpuExecutor(config)
        assert executor.telemetry is None

    def test_default_config_is_disabled(self):
        assert not SimConfig().telemetry.enabled

    def test_enabled_config_builds_hub(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch, telemetry=TelemetryConfig(enabled=True)
        )
        executor = GpuExecutor(config)
        assert isinstance(executor.telemetry, TelemetryHub)


class TestCountersMirrorSimulatorTallies:
    def test_memo_counters_match_lut_stats(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch,
            memo=MemoConfig(threshold=0.5),
            timing=TimingConfig(error_rate=0.05),
            telemetry=TelemetryConfig(enabled=True),
        )
        executor = _run(config)
        hub = executor.telemetry
        lut_stats = executor.device.lut_stats()
        hits = sum(s.hits for s in lut_stats.values())
        lookups = sum(s.lookups for s in lut_stats.values())
        updates = sum(s.updates for s in lut_stats.values())
        assert hub.registry.sum("*.*.fpu.*.memo.hits") == hits
        assert hub.registry.sum("*.*.fpu.*.memo.lookups") == lookups
        assert hub.registry.sum("*.*.fpu.*.memo.updates") == updates

    def test_ecu_counters_match_fpu_counters(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch,
            memo=MemoConfig(threshold=0.5),
            timing=TimingConfig(error_rate=0.2),
            telemetry=TelemetryConfig(enabled=True),
        )
        executor = _run(config)
        hub = executor.telemetry
        counters = executor.device.counters()
        injected = sum(c.errors_injected for c in counters.values())
        recovered = sum(c.errors_recovered for c in counters.values())
        masked = sum(c.errors_masked for c in counters.values())
        stalls = sum(c.recovery_stall_cycles for c in counters.values())
        assert hub.registry.sum("*.*.fpu.*.errors.injected") == injected
        assert hub.registry.sum("*.*.fpu.*.ecu.recoveries") == recovered
        assert hub.registry.sum("*.*.fpu.*.ecu.masked") == masked
        assert hub.registry.sum("*.*.fpu.*.ecu.recovery_cycles") == stalls

    def test_ops_and_wavefront_counters(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch, telemetry=TelemetryConfig(enabled=True)
        )
        executor = _run(config)
        hub = executor.telemetry
        assert hub.registry.sum("*.*.fpu.*.ops") == executor.device.executed_ops
        unit = executor.device.compute_units[0]
        assert hub.registry.value("cu0.wavefronts") == unit.wavefronts_executed
        assert (
            hub.registry.value("cu0.instruction_rounds")
            == unit.instruction_rounds
        )
        assert hub.registry.value("run.launches") == 1
        assert hub.registry.value("run.work_items") == 16

    def test_events_emitted_for_memo_and_errors(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch,
            memo=MemoConfig(threshold=0.5),
            timing=TimingConfig(error_rate=0.2),
            telemetry=TelemetryConfig(enabled=True, events_capacity=100_000),
        )
        executor = _run(config)
        events = executor.telemetry.events
        kinds = {event.kind for event in events}
        assert EventKind.MEMO_MISS in kinds
        assert EventKind.WAVEFRONT_RETIRED in kinds
        hits = len(list(events.iter_kind(EventKind.MEMO_HIT)))
        lut_stats = executor.device.lut_stats()
        assert hits == sum(s.hits for s in lut_stats.values())

    def test_baseline_device_has_no_memo_counters_but_tracks_ecu(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch,
            timing=TimingConfig(error_rate=0.2),
            telemetry=TelemetryConfig(enabled=True),
        )
        executor = GpuExecutor(config, memoized=False)
        executor.run(_kernel, 16, (Buffer.zeros(16),))
        hub = executor.telemetry
        assert hub.registry.sum("*.*.fpu.*.memo.lookups") == 0
        counters = executor.device.counters()
        recovered = sum(c.errors_recovered for c in counters.values())
        assert hub.registry.sum("*.*.fpu.*.ecu.recoveries") == recovered
        assert recovered > 0

    def test_energy_gauges_published_on_report(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch, telemetry=TelemetryConfig(enabled=True)
        )
        executor = _run(config)
        executor.device.energy_report()
        snap = executor.telemetry.snapshot()
        assert snap.gauges["energy.TOTAL.total_pj"] > 0
        assert any(path.startswith("energy.ADD.") for path in snap.gauges)


class TestHubRollups:
    def test_per_unit_hits_and_recovery_counts(self, tiny_arch):
        config = SimConfig(
            arch=tiny_arch,
            memo=MemoConfig(threshold=0.5),
            timing=TimingConfig(error_rate=0.1),
            telemetry=TelemetryConfig(enabled=True),
        )
        executor = _run(config)
        hub = executor.telemetry
        memo = hub.per_unit_hits()
        assert f"fpu.{UnitKind.ADD.value}.memo.lookups" in memo
        ecu = hub.recovery_counts()
        assert f"fpu.{UnitKind.ADD.value}.ecu.recoveries" in ecu


class TestDisabledProbeOverhead:
    """A disabled probe is one attribute check on the hot path."""

    OPS = 3000

    @staticmethod
    def _time_fpu(fpu) -> float:
        operands_stream = [(float(i % 7), 1.0) for i in range(TestDisabledProbeOverhead.OPS)]
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for operands in operands_stream:
                fpu.execute(ADD, operands)
            best = min(best, time.perf_counter() - start)
        return best

    def test_disabled_probe_not_slower_than_enabled(self):
        plain = ResilientFpu(UnitKind.ADD, MemoConfig())
        t_disabled = self._time_fpu(plain)

        hub = TelemetryHub(TelemetryConfig(enabled=True, events_capacity=1024))
        probed = ResilientFpu(UnitKind.ADD, MemoConfig())
        probed.attach_probe(hub.fpu_probe(0, 0, UnitKind.ADD))
        t_enabled = self._time_fpu(probed)

        # The disabled path (attribute check only) must not cost more
        # than the enabled path (counter increments + ring appends);
        # generous slack keeps this stable on noisy CI machines.
        assert t_disabled <= t_enabled * 1.5, (
            f"disabled probe suspiciously slow: {t_disabled:.4f}s vs "
            f"enabled {t_enabled:.4f}s"
        )

    def test_disabled_probe_records_nothing(self):
        fpu = ResilientFpu(UnitKind.ADD, MemoConfig())
        fpu.execute(ADD, (1.0, 2.0))
        assert fpu.probe is None
        assert fpu.ecu.probe is None
        assert fpu.memo.lut.probe is None
