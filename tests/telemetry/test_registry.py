"""Tests for the hierarchical metrics registry."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        with pytest.raises(TelemetryError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram(buckets=(1.0, 4.0, 12.0))
        for value in (0.5, 2.0, 12.0, 100.0):
            h.observe(value)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(114.5)
        assert h.mean == pytest.approx(114.5 / 4)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram(buckets=(4.0, 1.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram(buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("cu0.sc0.fpu.ADD.memo.hits")
        b = reg.counter("cu0.sc0.fpu.ADD.memo.hits")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(TelemetryError):
            reg.gauge("x.y")

    def test_malformed_paths_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", ".x", "x.", "a..b"):
            with pytest.raises(TelemetryError):
                reg.counter(bad)

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_glob_sum_across_hierarchy(self):
        reg = MetricsRegistry()
        for cu in range(2):
            for sc in range(3):
                reg.counter(f"cu{cu}.sc{sc}.fpu.SQRT.memo.hits").inc(10)
        reg.counter("cu0.sc0.fpu.ADD.memo.hits").inc(7)
        assert reg.sum("*.*.fpu.SQRT.memo.hits") == 60
        assert reg.sum("*.*.fpu.*.memo.hits") == 67
        assert reg.sum("cu1.*.fpu.*.memo.hits") == 30

    def test_rollup_strips_location_components(self):
        reg = MetricsRegistry()
        reg.counter("cu0.sc0.fpu.SQRT.memo.hits").inc(4)
        reg.counter("cu0.sc1.fpu.SQRT.memo.hits").inc(6)
        reg.counter("cu1.sc0.fpu.ADD.memo.hits").inc(1)
        rollup = reg.rollup("*.*.fpu.*.memo.hits", strip=2)
        assert rollup == {"fpu.SQRT.memo.hits": 10.0, "fpu.ADD.memo.hits": 1.0}

    def test_value_of_missing_path_raises(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().value("nope")


class TestSnapshot:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("a.hits").inc(3)
        reg.gauge("a.rate").set(0.5)
        reg.histogram("a.cost", buckets=(1.0, 2.0)).observe(1.5)
        return reg

    def test_round_trip_via_dict(self):
        snap = self._registry().snapshot()
        clone = MetricsSnapshot.from_dict(snap.to_dict())
        assert clone == snap

    def test_merge_adds_counters_and_histograms_and_maxes_gauges(self):
        a = self._registry().snapshot()
        b = self._registry().snapshot()
        b.gauges["a.rate"] = 0.9
        merged = a.merge(b)
        assert merged.counters["a.hits"] == 6
        assert merged.gauges["a.rate"] == 0.9
        assert merged.histograms["a.cost"]["count"] == 2
        # Inputs untouched.
        assert a.counters["a.hits"] == 3

    def test_merge_disjoint_paths(self):
        a = MetricsSnapshot(counters={"x": 1})
        b = MetricsSnapshot(counters={"y": 2}, gauges={"g": 1.0})
        merged = a.merge(b)
        assert merged.counters == {"x": 1, "y": 2}
        assert merged.gauges == {"g": 1.0}

    def test_merge_rejects_mismatched_histogram_buckets(self):
        a = MetricsSnapshot(
            histograms={"h": {"buckets": [1.0], "counts": [0, 1], "count": 1, "total": 2.0}}
        )
        b = MetricsSnapshot(
            histograms={"h": {"buckets": [2.0], "counts": [1, 0], "count": 1, "total": 1.0}}
        )
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_snapshot_rollup_and_sum(self):
        snap = MetricsSnapshot(
            counters={"cu0.sc0.fpu.ADD.memo.hits": 2, "cu0.sc1.fpu.ADD.memo.hits": 3}
        )
        assert snap.sum("*.*.fpu.*.memo.hits") == 5
        assert snap.rollup("*.*.fpu.*.memo.hits") == {"fpu.ADD.memo.hits": 5.0}
