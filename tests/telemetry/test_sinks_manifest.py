"""Tests for the JSONL/CSV sinks and the run manifest."""

import csv
import json

import pytest

from repro.config import SimConfig
from repro.errors import TelemetryError
from repro.telemetry.events import EventKind, EventRing
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_describe,
    read_manifest,
    write_manifest,
)
from repro.telemetry.registry import MetricsRegistry, MetricsSnapshot
from repro.telemetry.sinks import (
    merge_snapshots,
    read_jsonl,
    snapshot_from_jsonl,
    snapshot_to_rows,
    write_metrics_csv,
    write_run_jsonl,
)


def _snapshot() -> MetricsSnapshot:
    reg = MetricsRegistry()
    reg.counter("cu0.sc0.fpu.ADD.memo.hits").inc(4)
    reg.gauge("run.executed_ops").set(128)
    reg.histogram("cu0.sc0.fpu.ADD.ecu.recovery_cost", (12.0,)).observe(12.0)
    return reg.snapshot()


class TestRows:
    def test_rows_are_sorted_and_typed(self):
        rows = snapshot_to_rows(_snapshot())
        assert ("cu0.sc0.fpu.ADD.memo.hits", "counter", 4) in rows
        assert ("run.executed_ops", "gauge", 128.0) in rows
        kinds = {row[1] for row in rows}
        assert {"counter", "gauge", "histogram_count", "histogram_total"} <= kinds
        assert rows == sorted(rows)


class TestCsvSink:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "metrics.csv"
        write_metrics_csv(str(path), _snapshot())
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["path", "kind", "value"]
        body = {(r[0], r[1]) for r in rows[1:]}
        assert ("cu0.sc0.fpu.ADD.memo.hits", "counter") in body


class TestJsonlSink:
    def test_typed_records_and_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ring = EventRing(4)
        ring.emit(EventKind.RECOVERY, "cu0.sc0.fpu.ADD", {"cycles": 12})
        manifest = {"label": "test-run"}
        count = write_run_jsonl(
            str(path), manifest=manifest, snapshot=_snapshot(), events=ring
        )
        records = read_jsonl(str(path))
        assert len(records) == count
        types = [record["type"] for record in records]
        assert types[0] == "manifest"
        assert "metric" in types and "event" in types
        event = [r for r in records if r["type"] == "event"][0]
        assert event["kind"] == "recovery" and event["cycles"] == 12

    def test_snapshot_rebuilds_from_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        snap = _snapshot()
        write_run_jsonl(str(path), snapshot=snap)
        rebuilt = snapshot_from_jsonl(read_jsonl(str(path)))
        assert rebuilt.counters == snap.counters
        assert rebuilt.gauges == snap.gauges


class TestMergeSnapshots:
    def test_counter_totals_are_shard_sums(self):
        shards = [_snapshot() for _ in range(3)]
        merged = merge_snapshots(shards)
        assert merged.counters["cu0.sc0.fpu.ADD.memo.hits"] == 12

    def test_empty_shard_list_rejected(self):
        with pytest.raises(TelemetryError):
            merge_snapshots([])


class TestManifest:
    def test_build_contains_reproducibility_fields(self):
        manifest = build_manifest(
            "unit-test", SimConfig(), wall_time_s=1.25, snapshot=_snapshot()
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["label"] == "unit-test"
        assert manifest["seed"] == SimConfig().timing.seed
        assert manifest["config"]["memo"]["fifo_depth"] == 2
        assert manifest["wall_time_s"] == 1.25
        assert manifest["metrics"]["counters"]
        assert isinstance(manifest["git_describe"], str)

    def test_manifest_is_json_serializable(self):
        manifest = build_manifest("x", SimConfig())
        json.dumps(manifest)

    def test_write_and_read_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = build_manifest("round-trip", SimConfig(), extra={"k": "v"})
        write_manifest(str(path), manifest)
        assert read_manifest(str(path)) == manifest

    def test_git_describe_returns_string(self):
        assert isinstance(git_describe(), str) and git_describe()


class TestMultirunIntegration:
    def test_measure_with_seeds_merges_shards(self):
        from repro.analysis.multirun import measure_with_seeds
        from repro.kernels.base import Workload

        class TinyWorkload(Workload):
            name = "Tiny"

            def run(self, runner):
                from repro.kernels.api import Buffer

                out = Buffer.zeros(16)

                def k(ctx, buf):
                    yield ctx.fadd(float(ctx.global_id % 3), 1.0)

                runner.run(k, 16, (out,))
                return out.to_array()

            def output_tolerance(self):
                return 0.0

        measurement = measure_with_seeds(
            TinyWorkload, threshold=0.0, error_rate=0.1, seeds=(1, 2),
            collect_telemetry=True,
        )
        snap = measurement.telemetry
        assert snap is not None
        # Two shards of 16 ops each.
        assert snap.sum("*.*.fpu.*.ops") == 32
        # Without the flag nothing is collected.
        silent = measure_with_seeds(
            TinyWorkload, threshold=0.0, error_rate=0.1, seeds=(1,),
        )
        assert silent.telemetry is None
