"""Tests for the top-level public API surface."""


import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_error_hierarchy_root(self):
        from repro.errors import (
            ConfigError,
            EnergyModelError,
            IsaError,
            KernelError,
            MemoizationError,
            ReproError,
            TimingModelError,
        )

        for exc in (
            ConfigError,
            EnergyModelError,
            IsaError,
            KernelError,
            MemoizationError,
            TimingModelError,
        ):
            assert issubclass(exc, ReproError)

    def test_quickstart_snippet_from_docstring(self):
        """The exact flow shown in the package docstring must work."""
        from repro import GpuExecutor, MemoConfig, SimConfig, small_arch, workload_by_name

        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=1.0))
        workload = workload_by_name("FWT")
        executor = GpuExecutor(config)
        output = workload.run(executor)
        assert output is not None
        assert executor.device.lut_stats()

    def test_registry_accessible_from_top_level(self):
        assert len(repro.KERNEL_REGISTRY) == 7

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.energy
        import repro.fpu
        import repro.gpu
        import repro.images
        import repro.isa
        import repro.kernels
        import repro.memo
        import repro.timing
        import repro.utils
