"""Tests for synthetic images, PSNR and PGM I/O."""

import math

import numpy as np
import pytest

from repro.errors import ImageError
from repro.images.pgm import read_pgm, write_pgm
from repro.images.psnr import mse, psnr
from repro.images.synth import synth_book, synth_face, synthetic_image


class TestSynthFace:
    def test_shape_and_dtype(self):
        image = synth_face(64)
        assert image.shape == (64, 64)
        assert image.dtype == np.float32

    def test_8_bit_quantized(self):
        image = synth_face(64)
        assert np.all(image == np.round(image))
        assert image.min() >= 0 and image.max() <= 255

    def test_deterministic(self):
        assert np.array_equal(synth_face(48), synth_face(48))

    def test_has_flat_regions(self):
        """Most horizontal neighbour pairs must be equal (photo-like)."""
        image = synth_face(96)
        same = np.mean(image[:, 1:] == image[:, :-1])
        assert same > 0.5

    def test_has_structure(self):
        image = synth_face(96)
        assert image.std() > 20  # not a constant field

    def test_size_guard(self):
        with pytest.raises(ImageError):
            synth_face(4)


class TestSynthBook:
    def test_mostly_white_page(self):
        image = synth_book(96)
        assert np.mean(image > 200) > 0.6

    def test_contains_dark_glyphs(self):
        image = synth_book(96)
        assert np.mean(image < 80) > 0.02

    def test_deterministic(self):
        assert np.array_equal(synth_book(64), synth_book(64))

    def test_more_locality_than_face_at_exact_matching(self):
        """The paper observes higher hit rates on book than on face."""
        from repro.config import MemoConfig, SimConfig, small_arch
        from repro.gpu.executor import GpuExecutor
        from repro.kernels.sobel import SobelWorkload

        def hit_rate(image):
            config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
            executor = GpuExecutor(config)
            SobelWorkload(image).run(executor)
            stats = executor.device.lut_stats()
            return sum(s.hits for s in stats.values()) / sum(
                s.lookups for s in stats.values()
            )

        assert hit_rate(synth_book(48)) > hit_rate(synth_face(48))

    def test_lookup_by_name(self):
        assert np.array_equal(synthetic_image("face", 32), synth_face(32))
        assert np.array_equal(synthetic_image("book", 32), synth_book(32))
        with pytest.raises(ImageError):
            synthetic_image("cat", 32)


class TestPsnr:
    def test_identical_images_infinite(self):
        image = synth_face(16)
        assert psnr(image, image) == math.inf

    def test_known_mse(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2.0)
        assert mse(a, b) == 4.0
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 4))

    def test_psnr_decreases_with_noise(self):
        base = synth_face(32).astype(np.float64)
        small = psnr(base, base + 1.0)
        large = psnr(base, base + 10.0)
        assert small > large

    def test_30db_threshold_example(self):
        base = np.full((64, 64), 128.0)
        noisy = base + np.random.default_rng(1).normal(0, 8.06, base.shape)
        assert psnr(base, noisy) == pytest.approx(30.0, abs=0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ImageError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ImageError):
            mse(np.zeros((0,)), np.zeros((0,)))

    def test_invalid_peak(self):
        with pytest.raises(ImageError):
            psnr(np.zeros((2, 2)), np.zeros((2, 2)), peak=0.0)


class TestPgm:
    def test_round_trip(self, tmp_path):
        image = synth_face(24)
        path = tmp_path / "face.pgm"
        write_pgm(path, image)
        loaded = read_pgm(path)
        assert np.array_equal(loaded, image)

    def test_values_clamped_on_write(self, tmp_path):
        path = tmp_path / "clamp.pgm"
        write_pgm(path, np.array([[300.0, -5.0]]))
        loaded = read_pgm(path)
        assert loaded[0, 0] == 255 and loaded[0, 1] == 0

    def test_ascii_p2_supported(self, tmp_path):
        path = tmp_path / "ascii.pgm"
        path.write_text("P2\n# comment\n2 2\n255\n0 64\n128 255\n")
        loaded = read_pgm(path)
        assert loaded.tolist() == [[0.0, 64.0], [128.0, 255.0]]

    def test_comment_in_binary_header(self, tmp_path):
        image = synth_book(16)
        path = tmp_path / "b.pgm"
        write_pgm(path, image)
        raw = path.read_bytes().replace(b"P5\n", b"P5\n# scanner\n", 1)
        path.write_bytes(raw)
        assert np.array_equal(read_pgm(path), image)

    def test_non_pgm_rejected(self, tmp_path):
        path = tmp_path / "x.pgm"
        path.write_bytes(b"PNG whatever")
        with pytest.raises(ImageError):
            read_pgm(path)

    def test_truncated_data_rejected(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x01")
        with pytest.raises(ImageError):
            read_pgm(path)

    def test_non_2d_write_rejected(self, tmp_path):
        with pytest.raises(ImageError):
            write_pgm(tmp_path / "x.pgm", np.zeros(4))
