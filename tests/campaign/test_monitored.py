"""Monitoring is a pure observer of campaigns.

The ISSUE-level guarantee: a monitored campaign — including one that is
interrupted and resumed under monitoring — produces a final merged
result (and telemetry) byte-identical to an unmonitored run, and the
monitor's live registry view equals the final merged telemetry.
"""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    campaign_status,
    read_campaign_manifest,
    run_campaign,
)
from repro.monitor.run import MonitorConfig, RunMonitor


def tele_spec(**overrides):
    defaults = dict(
        name="mon",
        kernels=("Haar",),
        error_rates=(0.0, 0.1),
        seeds=(1, 2),
        collect_telemetry=True,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def make_monitor():
    return RunMonitor(
        MonitorConfig(heartbeat_interval_s=0.05, stall_after_s=60.0),
        label="campaign:mon",
    )


class TestPureObserver:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_monitored_result_byte_identical(self, tmp_path, jobs):
        spec = tele_spec()
        plain = run_campaign(
            spec, ResultStore(str(tmp_path / "plain")), jobs=jobs
        )
        monitor = make_monitor()
        monitored = run_campaign(
            spec, ResultStore(str(tmp_path / "mon")), jobs=jobs,
            monitor=monitor,
        )
        assert monitored.result.to_json() == plain.result.to_json()

    def test_live_view_equals_final_merged_telemetry(self, tmp_path):
        spec = tele_spec()
        monitor = make_monitor()
        report = run_campaign(
            spec, ResultStore(str(tmp_path / "cache")), monitor=monitor
        )
        live = monitor.live_view()
        assert live is not None
        assert live.to_dict() == report.result.telemetry

    def test_interrupt_then_monitored_resume_byte_identical(self, tmp_path):
        spec = tele_spec(seeds=(1, 2, 3))
        store = ResultStore(str(tmp_path / "interrupted"))
        partial = run_campaign(
            spec, store, max_shards=2, monitor=make_monitor()
        )
        assert not partial.complete
        resumed = run_campaign(spec, store, monitor=make_monitor())
        assert resumed.complete
        fresh = run_campaign(spec, ResultStore(str(tmp_path / "fresh")))
        assert resumed.result.to_json() == fresh.result.to_json()

    def test_monitor_does_not_change_cache_keys(self, tmp_path):
        spec = tele_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(spec, store, monitor=make_monitor())
        warm = run_campaign(spec, store)
        assert warm.computed == 0 and warm.cached == len(spec.tasks())


class TestManifestProgress:
    def test_manifest_carries_shard_progress(self, tmp_path):
        spec = tele_spec()
        store = ResultStore(str(tmp_path / "cache"))
        monitor = make_monitor()
        run_campaign(spec, store, monitor=monitor)
        manifest = read_campaign_manifest(store, spec)
        progress = manifest.get("progress")
        assert isinstance(progress, dict)
        assert progress["counts"]["done"] == len(spec.tasks())
        labels = {shard["label"] for shard in progress["shards"]}
        # Campaign shard labels are grid-cell qualified, not bare seeds.
        assert "Haar rate=0 seed=1" in labels or any(
            "rate=" in label for label in labels
        )
        done = [s for s in progress["shards"] if s["status"] == "done"]
        assert done and all(s.get("wall_s") is not None for s in done)
        json.dumps(progress)  # checkpointable

    def test_unmonitored_runs_still_record_progress(self, tmp_path):
        spec = tele_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(spec, store)
        manifest = read_campaign_manifest(store, spec)
        progress = manifest.get("progress")
        assert isinstance(progress, dict)
        shards = progress["shards"]
        assert shards and all(s["status"] == "done" for s in shards)
        assert all("cpu_time_s" in s for s in shards)

    def test_status_exposes_progress(self, tmp_path):
        spec = tele_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(spec, store, monitor=make_monitor())
        status = campaign_status(spec, store)
        assert isinstance(status.get("progress"), dict)
