"""Tests for canonical cache keys."""

import pytest

from repro.analysis.multirun import SeedShardTask
from repro.analysis.sweep import SweepTask
from repro.config import MemoConfig, TimingConfig
from repro.errors import StoreError
from repro.campaign.keys import (
    canonical_json,
    canonicalize,
    content_hash,
    factory_identity,
    seed_shard_key,
    sweep_point_key,
)
from repro.kernels.registry import KERNEL_REGISTRY


class TestCanonicalize:
    def test_dict_key_order_ignored(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_float_formatting_history_ignored(self):
        assert canonical_json(0.5) == canonical_json(float("0.50"))
        assert canonical_json(0.1) == canonical_json(float(repr(0.1)))

    def test_distinct_floats_distinct(self):
        assert canonical_json(0.1) != canonical_json(0.1 + 1e-12)

    def test_tuple_and_list_equivalent(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_set_order_free(self):
        assert canonical_json({3, 1, 2}) == canonical_json({2, 3, 1})

    def test_enum_uses_value(self):
        from repro.isa.opcodes import UnitKind

        assert canonicalize(UnitKind.ADD) == UnitKind.ADD.value

    def test_dataclass_becomes_field_dict(self):
        memo = MemoConfig(threshold=1.0)
        canonical = canonicalize(memo)
        assert isinstance(canonical, dict)
        assert canonical["threshold"] == (1.0).hex()

    def test_bool_is_not_treated_as_int(self):
        assert canonical_json(True) != canonical_json(1)

    def test_non_finite_float_rejected(self):
        with pytest.raises(StoreError):
            canonicalize(float("nan"))
        with pytest.raises(StoreError):
            canonicalize(float("inf"))

    def test_unhashable_object_rejected(self):
        with pytest.raises(StoreError):
            canonicalize(object())

    def test_idempotent(self):
        value = {"a": [0.25, {"b": (1, 2.5)}], "c": None}
        assert canonical_json(canonicalize(value)) == canonical_json(value)

    def test_content_hash_is_sha256_hex(self):
        digest = content_hash({"x": 1})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestFactoryIdentity:
    def test_registry_factory_is_stable(self):
        factory = KERNEL_REGISTRY["Haar"].default_factory
        identity = factory_identity(factory)
        assert identity is not None
        assert identity == factory_identity(
            KERNEL_REGISTRY["Haar"].default_factory
        )

    def test_different_kernels_differ(self):
        assert factory_identity(
            KERNEL_REGISTRY["Haar"].default_factory
        ) != factory_identity(KERNEL_REGISTRY["Sobel"].default_factory)

    def test_module_level_function_named_by_ref(self):
        identity = factory_identity(content_hash)
        assert identity == {
            "kind": "function",
            "ref": "repro.campaign.keys:content_hash",
        }

    def test_lambda_has_no_identity(self):
        assert factory_identity(lambda: None) is None

    def test_closure_has_no_identity(self):
        def outer():
            def inner():
                pass

            return inner

        assert factory_identity(outer()) is None


class TestTaskKeys:
    def _shard(self, **overrides):
        defaults = dict(
            factory=KERNEL_REGISTRY["Haar"].default_factory,
            threshold=0.046,
            error_rate=0.1,
            seed=1,
        )
        defaults.update(overrides)
        return SeedShardTask(**defaults)

    def test_seed_shard_key_deterministic(self):
        assert seed_shard_key(self._shard()) == seed_shard_key(self._shard())

    def test_every_input_moves_the_key(self):
        base = seed_shard_key(self._shard())
        assert seed_shard_key(self._shard(seed=2)) != base
        assert seed_shard_key(self._shard(error_rate=0.2)) != base
        assert seed_shard_key(self._shard(threshold=1.0)) != base
        assert seed_shard_key(self._shard(collect_telemetry=True)) != base
        assert (
            seed_shard_key(
                self._shard(factory=KERNEL_REGISTRY["FWT"].default_factory)
            )
            != base
        )

    def test_schema_bump_moves_the_key(self):
        task = self._shard()
        assert seed_shard_key(task, schema=1) != seed_shard_key(task, schema=2)

    def test_uncacheable_factory_yields_none(self):
        assert seed_shard_key(self._shard(factory=lambda: None)) is None

    def test_sweep_point_key_sees_config_fields(self):
        def point(**overrides):
            defaults = dict(
                x=1.0,
                factory=KERNEL_REGISTRY["Haar"].default_factory,
                memo=MemoConfig(threshold=1.0),
                timing=TimingConfig(),
            )
            defaults.update(overrides)
            return SweepTask(**defaults)

        base = sweep_point_key(point())
        assert sweep_point_key(point()) == base
        assert (
            sweep_point_key(point(memo=MemoConfig(threshold=1.0, fifo_depth=4)))
            != base
        )
        assert (
            sweep_point_key(point(timing=TimingConfig(error_rate=0.1))) != base
        )


class TestFaultModelKeyInvariance:
    """Legacy keys must stay byte-identical under the fault-model field.

    The load-bearing contract: an absent fault model and an explicit
    ``bernoulli`` spec contribute *nothing* to the hashed documents, so
    every blob written before the zoo existed keeps its key.
    """

    def _shard(self, **overrides):
        defaults = dict(
            factory=KERNEL_REGISTRY["Haar"].default_factory,
            threshold=0.046,
            error_rate=0.1,
            seed=1,
        )
        defaults.update(overrides)
        return SeedShardTask(**defaults)

    def _legacy_seed_shard_key(self, task):
        """The pre-zoo document, hand-built field by field."""
        from repro.campaign.keys import SCHEMA_VERSION

        return content_hash(
            {
                "kind": "multirun.seed_shard",
                "schema": SCHEMA_VERSION,
                "factory": factory_identity(task.factory),
                "threshold": task.threshold,
                "error_rate": task.error_rate,
                "seed": task.seed,
                "collect_telemetry": task.collect_telemetry,
            }
        )

    def test_seed_shard_key_matches_legacy_document(self):
        task = self._shard()
        assert seed_shard_key(task) == self._legacy_seed_shard_key(task)

    def test_bernoulli_fault_spec_keeps_legacy_key(self):
        from repro.timing.faults import FaultModelSpec

        task = self._shard(fault_model=FaultModelSpec())
        assert seed_shard_key(task) == self._legacy_seed_shard_key(task)

    def test_non_default_fault_model_moves_seed_shard_key(self):
        from repro.timing.faults import FaultModelSpec

        base = seed_shard_key(self._shard())
        burst = seed_shard_key(
            self._shard(fault_model=FaultModelSpec(kind="burst"))
        )
        assert burst != base
        assert burst != seed_shard_key(
            self._shard(
                fault_model=FaultModelSpec(kind="burst", burst_rate=0.9)
            )
        )

    def test_kind_irrelevant_params_do_not_move_the_key(self):
        from repro.timing.faults import FaultModelSpec

        a = self._shard(
            fault_model=FaultModelSpec(kind="spatial", burst_rate=0.9)
        )
        b = self._shard(
            fault_model=FaultModelSpec(kind="spatial", burst_rate=0.1)
        )
        assert seed_shard_key(a) == seed_shard_key(b)

    def _sweep(self, **overrides):
        defaults = dict(
            x=1.0,
            factory=KERNEL_REGISTRY["Haar"].default_factory,
            memo=MemoConfig(threshold=1.0),
            timing=TimingConfig(error_rate=0.1),
        )
        defaults.update(overrides)
        return SweepTask(**defaults)

    def _legacy_sweep_point_key(self, task):
        from repro.campaign.keys import SCHEMA_VERSION

        timing = canonicalize(task.timing)
        timing.pop("fault_model", None)
        return content_hash(
            {
                "kind": "sweep.point",
                "schema": SCHEMA_VERSION,
                "factory": factory_identity(task.factory),
                "x": task.x,
                "memo": task.memo,
                "timing": timing,
                "energy_params": task.energy_params,
            }
        )

    def test_sweep_point_key_matches_legacy_document(self):
        task = self._sweep()
        assert sweep_point_key(task) == self._legacy_sweep_point_key(task)

    def test_bernoulli_sweep_timing_keeps_legacy_key(self):
        from repro.timing.faults import FaultModelSpec

        task = self._sweep(
            timing=TimingConfig(error_rate=0.1, fault_model=FaultModelSpec())
        )
        assert sweep_point_key(task) == self._legacy_sweep_point_key(
            self._sweep()
        )

    def test_non_default_fault_model_moves_sweep_key(self):
        from repro.timing.faults import FaultModelSpec

        base = sweep_point_key(self._sweep())
        moved = sweep_point_key(
            self._sweep(
                timing=TimingConfig(
                    error_rate=0.1,
                    fault_model=FaultModelSpec(kind="stuck-at"),
                )
            )
        )
        assert moved != base
