"""Tests for campaign specs and the store-diff planner."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    plan_campaign,
)
from repro.campaign.codec import encode_seed_shard
from repro.analysis.multirun import run_seed_shard
from repro.errors import CampaignError
from repro.kernels.registry import KERNEL_REGISTRY


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny", kernels=("Haar",), error_rates=(0.0, 0.1), seeds=(1, 2)
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestValidation:
    def test_bad_name_rejected(self):
        for name in ("", "has space", "slash/y", "dots..", "café?"):
            with pytest.raises(CampaignError):
                tiny_spec(name=name)

    def test_dashes_and_underscores_allowed(self):
        assert tiny_spec(name="fig10-nightly_v2").name == "fig10-nightly_v2"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(CampaignError):
            tiny_spec(kernels=("Mandelbrot",))

    def test_empty_grid_axes_rejected(self):
        with pytest.raises(CampaignError):
            tiny_spec(kernels=())
        with pytest.raises(CampaignError):
            tiny_spec(error_rates=())
        with pytest.raises(CampaignError):
            tiny_spec(seeds=())

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(CampaignError):
            tiny_spec(seeds=(1, 1))

    def test_threshold_override_must_name_listed_kernel(self):
        with pytest.raises(CampaignError):
            tiny_spec(thresholds={"Sobel": 1.0})


class TestThresholdsAndFingerprint:
    def test_default_threshold_from_table1(self):
        assert tiny_spec().threshold_for("Haar") == (
            KERNEL_REGISTRY["Haar"].threshold
        )

    def test_override_wins(self):
        spec = tiny_spec(thresholds={"Haar": 2.0})
        assert spec.threshold_for("Haar") == 2.0

    def test_fingerprint_ignores_grid_order(self):
        a = CampaignSpec(
            name="x", kernels=("Haar", "FWT"), error_rates=(0.0, 0.1),
            seeds=(1, 2, 3),
        )
        b = CampaignSpec(
            name="x", kernels=("FWT", "Haar"), error_rates=(0.1, 0.0),
            seeds=(3, 1, 2),
        )
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sees_grid_content(self):
        assert tiny_spec().fingerprint() != tiny_spec(seeds=(1, 3)).fingerprint()
        assert (
            tiny_spec().fingerprint()
            != tiny_spec(thresholds={"Haar": 9.0}).fingerprint()
        )


class TestExpansion:
    def test_task_order_is_kernel_rate_seed(self):
        spec = CampaignSpec(
            name="order", kernels=("Haar", "FWT"), error_rates=(0.0, 0.1),
            seeds=(1, 2),
        )
        triples = [(t.kernel, t.error_rate, t.seed) for t in spec.tasks()]
        assert triples == [
            ("Haar", 0.0, 1), ("Haar", 0.0, 2),
            ("Haar", 0.1, 1), ("Haar", 0.1, 2),
            ("FWT", 0.0, 1), ("FWT", 0.0, 2),
            ("FWT", 0.1, 1), ("FWT", 0.1, 2),
        ]

    def test_all_keys_distinct(self):
        tasks = tiny_spec().tasks()
        assert len({t.key for t in tasks}) == len(tasks)

    def test_task_labels_are_human_readable(self):
        task = tiny_spec().tasks()[0]
        assert "Haar" in task.label and "seed=1" in task.label


class TestTransport:
    def test_round_trip(self):
        spec = tiny_spec(thresholds={"Haar": 2.0}, collect_telemetry=True)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        assert CampaignSpec.from_file(str(path)) == tiny_spec()

    def test_missing_file_raises_campaign_error(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignSpec.from_file(str(tmp_path / "absent.json"))

    def test_invalid_json_raises_campaign_error(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(CampaignError):
            CampaignSpec.from_file(str(path))

    def test_unknown_field_rejected(self):
        data = tiny_spec().to_dict()
        data["kernel"] = ["Haar"]  # typo for "kernels"
        with pytest.raises(CampaignError) as excinfo:
            CampaignSpec.from_dict(data)
        assert "kernel" in str(excinfo.value)

    def test_unsupported_schema_rejected(self):
        data = tiny_spec().to_dict()
        data["schema"] = 99
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)


class TestPlanner:
    def test_empty_store_everything_pending(self, tmp_path):
        spec = tiny_spec()
        plan = plan_campaign(spec, ResultStore(str(tmp_path / "cache")))
        assert plan.total == 4
        assert not plan.cached and len(plan.pending) == 4
        assert not plan.complete

    def test_durable_shards_drop_out_of_pending(self, tmp_path):
        spec = tiny_spec(seeds=(1,))
        store = ResultStore(str(tmp_path / "cache"))
        first = spec.tasks()[0]
        store.put(first.key, encode_seed_shard(run_seed_shard(first.shard)))
        plan = plan_campaign(spec, store)
        assert [t.key for t in plan.cached] == [first.key]
        assert len(plan.pending) == plan.total - 1

    def test_corrupt_blob_counts_as_pending(self, tmp_path):
        spec = tiny_spec(seeds=(1,))
        store = ResultStore(str(tmp_path / "cache"), lru_capacity=0)
        first = spec.tasks()[0]
        path = store.put(
            first.key, encode_seed_shard(run_seed_shard(first.shard))
        )
        path.write_text("{")  # torn write
        plan = plan_campaign(spec, store)
        assert first.key in [t.key for t in plan.pending]


class TestBackendField:
    """Backends are execution provenance, not measurement identity."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError):
            tiny_spec(backend="cuda")

    def test_fingerprint_ignores_backend(self):
        # Bit-identical backends share the campaign fingerprint, so a
        # campaign can be resumed under either backend from the same
        # store blobs.
        assert (
            tiny_spec().fingerprint() == tiny_spec(backend="vector").fingerprint()
        )

    def test_shard_keys_shared_across_backends(self):
        scalar_keys = [t.key for t in tiny_spec().tasks()]
        vector_keys = [t.key for t in tiny_spec(backend="vector").tasks()]
        assert scalar_keys == vector_keys

    def test_tasks_carry_the_backend(self):
        for task in tiny_spec(backend="vector").tasks():
            assert task.shard.backend == "vector"

    def test_round_trip(self):
        spec = tiny_spec(backend="vector")
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.backend == "vector"
        assert clone.fingerprint() == spec.fingerprint()

    def test_scalar_default_omitted_from_document(self):
        document = tiny_spec().to_dict()
        assert "backend" not in document
        assert CampaignSpec.from_dict(document).backend == "scalar"


class TestFaultModelSpecField:
    def test_fingerprint_invariant_under_default_fault_model(self):
        from repro.timing.faults import FaultModelSpec

        assert (
            tiny_spec().fingerprint()
            == tiny_spec(fault_model=FaultModelSpec()).fingerprint()
        )

    def test_non_default_fault_model_moves_fingerprint_and_keys(self):
        from repro.timing.faults import FaultModelSpec

        base = tiny_spec()
        burst = tiny_spec(
            fault_model=FaultModelSpec(kind="burst", burst_rate=0.4)
        )
        assert base.fingerprint() != burst.fingerprint()
        assert [t.key for t in base.tasks()] != [t.key for t in burst.tasks()]

    def test_tasks_carry_the_fault_model(self):
        from repro.timing.faults import FaultModelSpec

        spec = tiny_spec(fault_model=FaultModelSpec(kind="spatial"))
        for task in spec.tasks():
            assert task.shard.fault_model is spec.fault_model

    def test_default_fault_model_omitted_from_document(self):
        from repro.timing.faults import FaultModelSpec

        assert "fault_model" not in tiny_spec().to_dict()
        assert (
            "fault_model"
            not in tiny_spec(fault_model=FaultModelSpec()).to_dict()
        )

    def test_fault_model_round_trip(self):
        from repro.timing.faults import FaultModelSpec

        spec = tiny_spec(
            fault_model=FaultModelSpec(
                kind="burst", burst_rate=0.4, burst_enter=0.01, burst_exit=0.1
            )
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.fault_model == spec.fault_model
        assert clone.fingerprint() == spec.fingerprint()

    def test_from_dict_accepts_string_spelling(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "tiny",
                "kernels": ["Haar"],
                "fault_model": "stuck-at:fraction=0.05",
            }
        )
        assert spec.fault_model.kind == "stuck-at"
        assert spec.fault_model.stuck_fraction == 0.05

    def test_unknown_fault_model_is_a_campaign_error(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(
                {
                    "name": "tiny",
                    "kernels": ["Haar"],
                    "fault_model": {"kind": "gremlins"},
                }
            )
        with pytest.raises(CampaignError):
            tiny_spec(fault_model="burst")  # strings must be coerced first
