"""Store-enabled analysis paths must equal the storeless ones exactly.

``measure_with_seeds`` and the sweep drivers accept an optional
``store``; with one, previously computed shards/points load from blobs
instead of simulating.  These tests pin the contract: same numbers with
or without the store, and a warm second pass that is all cache hits.
"""

import dataclasses

from repro.analysis.multirun import measure_with_seeds
from repro.analysis.sweep import error_rate_sweep, threshold_sweep
from repro.campaign import ResultStore
from repro.kernels.registry import KERNEL_REGISTRY

HAAR = KERNEL_REGISTRY["Haar"].default_factory
HAAR_THRESHOLD = KERNEL_REGISTRY["Haar"].threshold


class TestMeasureWithSeeds:
    def test_store_does_not_change_the_measurement(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        plain = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2)
        )
        stored = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2), store=store
        )
        assert stored.saving == plain.saving
        assert stored.hit_rate == plain.hit_rate
        assert stored.counters == plain.counters
        assert stored.lut_stats == plain.lut_stats
        assert stored.ecu_stats == plain.ecu_stats

    def test_second_pass_is_all_hits(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        first = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2), store=store
        )
        assert store.counter_values()["write"] == 2
        second = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2), store=store
        )
        assert store.counter_values()["miss"] == 2  # only the cold pass
        assert second.saving == first.saving

    def test_seed_superset_reuses_the_overlap(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2), store=store
        )
        grown = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2, 3), store=store
        )
        assert store.counter_values()["write"] == 3  # only seed 3 computed
        plain = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1, 2, 3)
        )
        assert grown.saving == plain.saving

    def test_uncacheable_factory_still_works(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        lam = lambda: HAAR()  # noqa: E731 - deliberately identity-free
        measurement = measure_with_seeds(
            lam, HAAR_THRESHOLD, error_rate=0.1, seeds=(1,), store=store
        )
        assert measurement.saving.samples == 1
        assert store.counter_values()["write"] == 0  # nothing cached

    def test_telemetry_snapshot_round_trips_through_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        cold = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1,),
            collect_telemetry=True, store=store,
        )
        warm = measure_with_seeds(
            HAAR, HAAR_THRESHOLD, error_rate=0.1, seeds=(1,),
            collect_telemetry=True, store=store,
        )
        assert warm.telemetry is not None
        assert warm.telemetry.counters == cold.telemetry.counters


class TestSweeps:
    def test_threshold_sweep_with_store_matches_without(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        thresholds = (0.0, HAAR_THRESHOLD)
        plain = threshold_sweep(HAAR, thresholds)
        cold = threshold_sweep(HAAR, thresholds, store=store)
        warm = threshold_sweep(HAAR, thresholds, store=store)
        assert [dataclasses.asdict(p) for p in cold] == [
            dataclasses.asdict(p) for p in plain
        ]
        assert [dataclasses.asdict(p) for p in warm] == [
            dataclasses.asdict(p) for p in plain
        ]
        counts = store.counter_values()
        assert counts["write"] == 2 and counts["hit"] == 2

    def test_error_rate_sweep_with_store_matches_without(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        rates = (0.0, 0.1)
        plain = error_rate_sweep(HAAR, rates, HAAR_THRESHOLD)
        cold = error_rate_sweep(HAAR, rates, HAAR_THRESHOLD, store=store)
        assert [dataclasses.asdict(p) for p in cold] == [
            dataclasses.asdict(p) for p in plain
        ]
