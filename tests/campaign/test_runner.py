"""Tests for the resumable campaign runner.

The headline guarantee under test: a campaign that is interrupted (by
``max_shards`` budgeting or a real SIGKILL mid-run) and then resumed
merges to a result **byte-identical** to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    campaign_status,
    manifest_path,
    merge_campaign,
    read_campaign_manifest,
    run_campaign,
)
from repro.errors import CampaignError


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny", kernels=("Haar",), error_rates=(0.0, 0.1), seeds=(1, 2)
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestRunCampaign:
    def test_cold_run_computes_everything(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        report = run_campaign(tiny_spec(), store)
        assert report.complete
        assert report.computed == 4 and report.cached == 0
        assert report.result is not None
        assert len(report.result.points) == 2  # one per error rate

    def test_warm_run_computes_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        first = run_campaign(tiny_spec(), store)
        second = run_campaign(tiny_spec(), store)
        assert second.computed == 0 and second.cached == 4
        assert second.result.to_json() == first.result.to_json()

    def test_result_json_shape(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        report = run_campaign(tiny_spec(), store)
        document = json.loads(report.result.to_json())
        assert document["name"] == "tiny"
        assert document["fingerprint"] == tiny_spec().fingerprint()
        point = document["points"][0]
        assert point["seeds"] == [1, 2]
        assert point["saving"]["samples"] == 2
        assert {"counters", "lut_stats", "ecu_stats"} <= set(point["tallies"])

    def test_result_write_is_atomic_file(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        report = run_campaign(tiny_spec(), store)
        target = tmp_path / "result.json"
        report.result.write(str(target))
        assert target.read_text() == report.result.to_json()

    def test_jobs_do_not_change_the_result(self, tmp_path):
        serial = run_campaign(
            tiny_spec(), ResultStore(str(tmp_path / "serial"))
        )
        parallel = run_campaign(
            tiny_spec(), ResultStore(str(tmp_path / "parallel")), jobs=2
        )
        assert parallel.result.to_json() == serial.result.to_json()

    def test_telemetry_campaign_merges_snapshots(self, tmp_path):
        spec = tiny_spec(collect_telemetry=True, error_rates=(0.1,))
        report = run_campaign(spec, ResultStore(str(tmp_path / "cache")))
        assert report.result.telemetry is not None
        assert report.result.telemetry["counters"]


class TestResume:
    def test_max_shards_checkpoint_then_resume_bit_identical(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3))
        interrupted = ResultStore(str(tmp_path / "interrupted"))
        partial = run_campaign(spec, interrupted, max_shards=2)
        assert not partial.complete
        assert partial.result is None
        manifest = read_campaign_manifest(interrupted, spec)
        assert manifest["status"] == "partial"
        assert manifest["completed"] == 2 and manifest["pending"] == 4

        resumed = run_campaign(spec, interrupted)
        assert resumed.complete
        assert resumed.cached == 2 and resumed.computed == 4

        fresh = run_campaign(spec, ResultStore(str(tmp_path / "fresh")))
        assert resumed.result.to_json() == fresh.result.to_json()

    def test_corrupt_blob_mid_campaign_is_recomputed(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path / "cache"), lru_capacity=0)
        first = run_campaign(spec, store)
        victim = store.path_for(spec.tasks()[1].key)
        victim.write_text("{definitely torn")
        again = run_campaign(spec, store)
        assert again.computed == 1 and again.cached == 3
        assert again.result.to_json() == first.result.to_json()

    def test_merge_incomplete_campaign_names_missing_shard(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(spec, store, max_shards=1)
        with pytest.raises(CampaignError) as excinfo:
            merge_campaign(spec, store)
        assert "Haar" in str(excinfo.value)

    def test_sigkill_mid_run_then_resume_bit_identical(self, tmp_path):
        """Kill a real campaign process and resume from its store."""
        spec = tiny_spec(
            name="killme", error_rates=(0.0, 0.05, 0.1, 0.15), seeds=(1, 2, 3)
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        cache = tmp_path / "cache"

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                str(spec_path), "--cache-dir", str(cache),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until at least one shard is durable, then pull the plug.
            objects = cache / "objects"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if objects.is_dir() and any(objects.glob("*/*.json")):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)

        store = ResultStore(str(cache))
        assert store.keys(), "no shard became durable before the kill"

        resumed = run_campaign(spec, store)
        assert resumed.complete
        fresh = run_campaign(spec, ResultStore(str(tmp_path / "fresh")))
        assert resumed.result.to_json() == fresh.result.to_json()


class TestManifestAndStatus:
    def test_manifest_checkpoints_are_valid_json_with_provenance(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(spec, store, jobs=2)
        manifest = json.loads(manifest_path(store, spec).read_text())
        assert manifest["name"] == "tiny"
        assert manifest["fingerprint"] == spec.fingerprint()
        assert manifest["spec"] == spec.to_dict()
        assert manifest["status"] == "complete"
        assert manifest["jobs"] == 2
        assert manifest["completed"] == 4 and manifest["pending"] == 0

    def test_status_without_manifest(self, tmp_path):
        status = campaign_status(
            tiny_spec(), ResultStore(str(tmp_path / "cache"))
        )
        assert status["cached"] == 0 and status["pending"] == 4
        assert "manifest" not in status

    def test_status_after_run(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(spec, store)
        status = campaign_status(spec, store)
        assert status["cached"] == 4 and status["pending"] == 0
        assert status["manifest"]["status"] == "complete"
        assert status["manifest"]["fingerprint_matches"]

    def test_status_flags_spec_drift(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        run_campaign(tiny_spec(), store)
        grown = tiny_spec(seeds=(1, 2, 3))
        status = campaign_status(grown, store)
        assert not status["manifest"]["fingerprint_matches"]
        assert status["cached"] == 4 and status["pending"] == 2
