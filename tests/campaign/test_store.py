"""Tests for the content-addressed result store.

The interesting behaviors are the failure modes: corrupt and truncated
blobs must read as misses (and be cleaned up) so callers recompute and
rewrite, and two uncoordinated processes writing the same key must both
land complete envelopes.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.campaign.keys import content_hash
from repro.campaign.store import ResultStore
from repro.errors import StoreError
from repro.telemetry.registry import MetricsRegistry


def key_of(value) -> str:
    return content_hash({"test": value})


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        key = key_of("round-trip")
        payload = {"saving": 0.25, "seeds": [1, 2, 3]}
        store.put(key, payload)
        assert store.get(key) == payload

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        assert store.get(key_of("absent")) is None
        assert store.counter_values()["miss"] == 1

    def test_contains(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        key = key_of("contains")
        assert key not in store
        store.put(key, {"x": 1})
        assert key in store

    def test_survives_process_boundary(self, tmp_path):
        key = key_of("durable")
        ResultStore(str(tmp_path / "cache")).put(key, {"x": 1})
        fresh = ResultStore(str(tmp_path / "cache"))
        assert fresh.get(key) == {"x": 1}
        assert fresh.counter_values() == {
            "hit": 1,
            "miss": 0,
            "write": 0,
            "evict": 0,
            "corrupt": 0,
        }

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        for bad in ("", "abc", "../../etc/passwd", "Z" * 64):
            with pytest.raises(StoreError):
                store.get(bad)

    def test_negative_lru_capacity_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(str(tmp_path / "cache"), lru_capacity=-1)


class TestCorruption:
    """Damage in any layer demotes the blob to a miss and removes it."""

    def _stored(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"), lru_capacity=0)
        key = key_of("corruptible")
        path = store.put(key, {"value": 42})
        return store, key, path

    def test_truncated_blob_is_a_miss_and_removed(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # torn write survivor
        assert store.get(key) is None
        assert not path.exists()
        assert store.counter_values()["corrupt"] == 1

    def test_bit_rot_in_payload_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 43  # hash no longer matches
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None
        assert not path.exists()

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["key"] = key_of("somebody else")
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None

    def test_schema_drift_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["schema"] = 999
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None

    def test_non_json_garbage_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        path.write_bytes(b"\x00\xff not json")
        assert store.get(key) is None

    def test_miss_then_recompute_then_rewrite(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        path.write_text("{")  # partial write
        assert store.get(key) is None  # miss -> caller recomputes
        store.put(key, {"value": 42})  # rewrite
        assert store.get(key) == {"value": 42}
        counts = store.counter_values()
        assert counts["corrupt"] == 1 and counts["write"] == 2


class TestConcurrentWriters:
    def test_two_processes_racing_on_one_key(self, tmp_path):
        """Both writers land complete envelopes; last rename wins."""
        key = key_of("contended")
        script = (
            "import sys\n"
            "from repro.campaign.store import ResultStore\n"
            "store = ResultStore(sys.argv[1])\n"
            "for round in range(25):\n"
            "    store.put(sys.argv[2], {'value': 42, 'writer': sys.argv[3],"
            " 'round': round})\n"
        )
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path / "cache"), key, who],
                env=env,
            )
            for who in ("a", "b")
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        store = ResultStore(str(tmp_path / "cache"))
        payload = store.get(key)
        assert payload is not None  # never torn, never quarantined
        assert payload["value"] == 42
        assert payload["writer"] in ("a", "b") and payload["round"] == 24
        assert store.counter_values()["corrupt"] == 0


class TestLruFront:
    def test_disk_read_only_once(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        key = key_of("hot")
        path = store.put(key, {"x": 1})
        os.unlink(path)  # disk gone; LRU still serves it
        assert store.get(key) == {"x": 1}

    def test_eviction_counted_and_bounded(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"), lru_capacity=2)
        keys = [key_of(f"entry-{i}") for i in range(4)]
        for key in keys:
            store.put(key, {"k": key})
        assert store.counter_values()["evict"] == 2
        assert len(store._lru) == 2

    def test_capacity_zero_disables_front(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"), lru_capacity=0)
        key = key_of("cold")
        path = store.put(key, {"x": 1})
        os.unlink(path)
        assert store.get(key) is None


class TestMaintenance:
    def test_stats_census(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        for i in range(3):
            store.put(key_of(f"s{i}"), {"i": i})
        stats = store.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert stats.writes == 3
        assert stats.to_dict()["entries"] == 3

    def test_keys_sorted(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        wanted = sorted(key_of(f"k{i}") for i in range(3))
        for key in wanted:
            store.put(key, {})
        assert store.keys() == wanted

    def test_gc_removes_corrupt_blobs(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        good = key_of("good")
        store.put(good, {"x": 1})
        bad_path = store.put(key_of("bad"), {"x": 2})
        bad_path.write_text("{")
        report = store.gc()
        assert report.kept == 1
        assert store.keys() == [good]

    def test_gc_max_age_expires_old_blobs(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        old = key_of("old")
        young = key_of("young")
        old_path = store.put(old, {"x": 1})
        store.put(young, {"x": 2})
        ancient = os.stat(old_path).st_mtime - 10_000
        os.utime(old_path, (ancient, ancient))
        report = store.gc(max_age_s=3600)
        assert report.removed == 1 and report.kept == 1
        assert store.keys() == [young]

    def test_gc_max_bytes_evicts_oldest_first(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        paths = []
        for i in range(3):
            paths.append(store.put(key_of(f"b{i}"), {"i": i}))
        for offset, path in enumerate(paths):
            stamp = os.stat(path).st_mtime - 100 + offset
            os.utime(path, (stamp, stamp))
        one_blob = os.stat(paths[0]).st_size
        report = store.gc(max_bytes=one_blob + 1)
        assert report.removed == 2
        assert report.removed_keys == [paths[0].stem, paths[1].stem]
        # gc cleared the LRU front, so survivors re-verify from disk
        assert store.get(paths[2].stem) == {"i": 2}

    def test_gc_dry_run_previews_without_touching_anything(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        paths = [store.put(key_of(f"d{i}"), {"i": i}) for i in range(3)]
        for offset, path in enumerate(paths):
            stamp = os.stat(path).st_mtime - 100 + offset
            os.utime(path, (stamp, stamp))
        before = store.counter_values()

        report = store.gc(max_bytes=0, dry_run=True)
        assert report.dry_run
        assert report.removed == 3
        assert report.removed_keys == [path.stem for path in paths]
        # per-candidate detail: key, bytes, oldest-first age ordering
        assert [entry["key"] for entry in report.removed_entries] == [
            path.stem for path in paths
        ]
        assert all(entry["bytes"] > 0 for entry in report.removed_entries)
        ages = [entry["age_s"] for entry in report.removed_entries]
        assert ages == sorted(ages, reverse=True)
        assert report.to_dict()["dry_run"] is True

        # nothing moved: blobs, counters and the LRU front all survive
        assert store.keys() == sorted(path.stem for path in paths)
        assert store.counter_values() == before
        assert store._lru  # the puts above are still cached in memory

    def test_gc_dry_run_skips_corrupt_quarantine(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        bad_path = store.put(key_of("dbad"), {"x": 2})
        bad_path.write_text("{")
        report = store.gc(dry_run=True)
        # the damaged blob is left in place for a real pass to handle
        assert report.removed == 0
        assert store.counter_values()["corrupt"] == 0
        assert bad_path.exists()

    def test_shared_registry_aggregates_counters(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(str(tmp_path / "cache"), registry=registry)
        store.put(key_of("r"), {})
        snapshot = registry.snapshot()
        assert snapshot.counters.get("cache.write") == 1
        assert store.metrics_snapshot().counters == snapshot.counters
