"""Tests for the store payload codecs — round trips must be exact."""

import json

import pytest

from repro.analysis.multirun import SeedShardTask, run_seed_shard
from repro.analysis.sweep import SweepPoint
from repro.campaign.codec import (
    decode_seed_shard,
    decode_sweep_point,
    encode_seed_shard,
    encode_sweep_point,
    fill_missing_units,
)
from repro.errors import StoreError
from repro.isa.opcodes import UnitKind
from repro.kernels.registry import KERNEL_REGISTRY


def haar_shard(collect_telemetry: bool = False):
    return run_seed_shard(
        SeedShardTask(
            factory=KERNEL_REGISTRY["Haar"].default_factory,
            threshold=KERNEL_REGISTRY["Haar"].threshold,
            error_rate=0.1,
            seed=1,
            collect_telemetry=collect_telemetry,
        )
    )


class TestSeedShardCodec:
    def test_round_trip_is_exact(self):
        shard = haar_shard()
        decoded = decode_seed_shard(encode_seed_shard(shard))
        assert decoded.seed == shard.seed
        assert decoded.saving == shard.saving  # bit-for-bit
        assert decoded.hit_rate == shard.hit_rate
        assert decoded.counters == shard.counters
        assert {k: vars(v) for k, v in decoded.lut_stats.items()} == {
            k: vars(v) for k, v in shard.lut_stats.items()
        }
        assert decoded.ecu_stats == shard.ecu_stats
        assert decoded.snapshot is None

    def test_round_trip_survives_json_text(self):
        shard = haar_shard()
        payload = json.loads(json.dumps(encode_seed_shard(shard)))
        decoded = decode_seed_shard(payload)
        assert decoded.saving == shard.saving
        assert decoded.counters == shard.counters

    def test_telemetry_snapshot_round_trips(self):
        shard = haar_shard(collect_telemetry=True)
        decoded = decode_seed_shard(
            json.loads(json.dumps(encode_seed_shard(shard)))
        )
        assert decoded.snapshot is not None
        assert decoded.snapshot.counters == shard.snapshot.counters

    def test_undecodable_payload_raises_store_error(self):
        with pytest.raises(StoreError):
            decode_seed_shard({"seed": 1})
        with pytest.raises(StoreError):
            decode_seed_shard({**encode_seed_shard(haar_shard()), "saving": "x"})


class TestSweepPointCodec:
    def test_round_trip_is_exact(self):
        point = SweepPoint(
            x=0.1,
            hit_rate=0.123456789012345,
            memo_energy_pj=1e9 + 0.25,
            baseline_energy_pj=2e9,
            executed_ops=123456,
        )
        decoded = decode_sweep_point(
            json.loads(json.dumps(encode_sweep_point(point)))
        )
        assert decoded == point
        assert decoded.saving == point.saving

    def test_undecodable_payload_raises_store_error(self):
        with pytest.raises(StoreError):
            decode_sweep_point({"x": 1.0})


class TestFillMissingUnits:
    def test_completes_dropped_zero_rows(self):
        counters, ecu = fill_missing_units({}, {})
        assert set(counters) == set(UnitKind)
        assert set(ecu) == set(UnitKind)
        assert all(c.ops == 0 for c in counters.values())
