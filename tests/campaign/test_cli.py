"""Tests for the campaign CLI group and the --cache flags."""

import io
import json

import pytest

from repro.campaign import CampaignSpec, ResultStore
from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def spec_file(tmp_path):
    spec = CampaignSpec(
        name="cli-camp", kernels=("Haar",), error_rates=(0.0, 0.1), seeds=(1, 2)
    )
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    return path


class TestCampaignRun:
    def test_run_then_status_then_resume(self, tmp_path, spec_file):
        cache = str(tmp_path / "cache")
        result = str(tmp_path / "result.json")

        code, text = run_cli(
            "campaign", "run", str(spec_file), "--cache-dir", cache,
            "--result", result,
        )
        assert code == 0
        assert "complete" in text and "4 computed of 4" in text
        assert "merged result written" in text
        document = json.loads(open(result).read())
        assert document["name"] == "cli-camp"

        code, text = run_cli(
            "campaign", "status", str(spec_file), "--cache-dir", cache
        )
        assert code == 0
        assert "4/4 shards durable, 0 pending" in text
        assert "last checkpoint: complete" in text

        code, text = run_cli(
            "campaign", "resume", str(spec_file), "--cache-dir", cache
        )
        assert code == 0
        assert "4 shards cached, 0 computed" in text

    def test_partial_run_writes_no_result(self, tmp_path, spec_file):
        cache = str(tmp_path / "cache")
        result = str(tmp_path / "result.json")
        code, text = run_cli(
            "campaign", "run", str(spec_file), "--cache-dir", cache,
            "--max-shards", "1", "--result", result,
        )
        assert code == 0
        assert "partial" in text
        assert "no merged result written" in text
        assert not (tmp_path / "result.json").exists()

    def test_resume_without_checkpoint_fails(self, tmp_path, spec_file):
        code, text = run_cli(
            "campaign", "resume", str(spec_file),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 1
        assert "no checkpoint manifest" in text

    def test_missing_spec_file_is_a_clean_error(self, tmp_path):
        code, text = run_cli(
            "campaign", "run", str(tmp_path / "absent.json"),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 1
        assert "does not exist" in text

    def test_gc_empty_store(self, tmp_path):
        code, text = run_cli(
            "campaign", "gc", "--cache-dir", str(tmp_path / "cache")
        )
        assert code == 0
        assert "removed 0 blobs" in text

    def test_gc_max_age_drains_old_store(self, tmp_path, spec_file):
        cache = str(tmp_path / "cache")
        run_cli("campaign", "run", str(spec_file), "--cache-dir", cache)
        code, text = run_cli(
            "campaign", "gc", "--cache-dir", cache, "--max-age-days", "0"
        )
        assert code == 0
        assert "removed 4 blobs" in text
        assert ResultStore(cache).keys() == []

    def test_gc_dry_run_reports_without_deleting(self, tmp_path, spec_file):
        cache = str(tmp_path / "cache")
        run_cli("campaign", "run", str(spec_file), "--cache-dir", cache)
        keys_before = ResultStore(cache).keys()
        code, text = run_cli(
            "campaign", "gc", "--cache-dir", cache,
            "--max-bytes", "0", "--dry-run",
        )
        assert code == 0
        assert "would remove 4 blobs" in text
        assert "nothing deleted" in text
        # every candidate row names its key prefix, bytes and age
        for key in keys_before:
            assert key[:16] in text
        # and the store is untouched
        assert ResultStore(cache).keys() == keys_before

    def test_gc_dry_run_on_empty_store(self, tmp_path):
        code, text = run_cli(
            "campaign", "gc", "--cache-dir", str(tmp_path / "cache"),
            "--dry-run",
        )
        assert code == 0
        assert "would remove 0 blobs" in text


class TestCampaignWatchJson:
    def test_watch_json_emits_one_board_document(self, tmp_path, spec_file):
        cache = str(tmp_path / "cache")
        run_cli("campaign", "run", str(spec_file), "--cache-dir", cache)
        code, text = run_cli(
            "campaign", "watch", str(spec_file), "--cache-dir", cache,
            "--once", "--json",
        )
        assert code == 0
        document = json.loads(text)
        assert document["kind"] == "campaign.board"
        assert document["name"] == "cli-camp"
        assert document["status"] == "complete"
        assert document["completed"] == 4
        assert document["progress"]["counts"] == {"done": 4}

    def test_watch_json_reports_absent_manifest(self, tmp_path, spec_file):
        code, text = run_cli(
            "campaign", "watch", str(spec_file),
            "--cache-dir", str(tmp_path / "cache"), "--once", "--json",
        )
        assert code == 1
        document = json.loads(text)
        assert document["status"] == "absent"
        assert document["name"] == "cli-camp"


class TestCacheFlags:
    def test_multiseed_run_reports_cache_traffic(self, tmp_path):
        cache = str(tmp_path / "cache")
        code, text = run_cli(
            "run", "Haar", "--seeds", "1,2", "--error-rate", "0.1",
            "--cache-dir", cache,
        )
        assert code == 0
        assert "cache" in text and "2 computed" in text

        code, text = run_cli(
            "run", "Haar", "--seeds", "1,2", "--error-rate", "0.1",
            "--cache-dir", cache,
        )
        assert code == 0
        assert "2 cached, 0 computed" in text

    def test_single_run_cache_flag_prints_note(self, tmp_path):
        code, text = run_cli(
            "run", "Haar", "--cache", "--cache-dir", str(tmp_path / "cache")
        )
        assert code == 0
        assert "not cached" in text

    def test_experiment_cache_line_printed(self, tmp_path):
        # Sweep-level cache correctness is pinned in test_cached_analysis;
        # here just check the experiment command wires the store through
        # and reports its traffic (table2 is cheap and touches no store).
        cache = str(tmp_path / "cache")
        code, text = run_cli("experiment", "table2", "--cache-dir", cache)
        assert code == 0
        assert "cache: 0 cached points, 0 computed" in text

    def test_cacheless_run_matches_main_output(self, tmp_path):
        """--cache only adds a cache line; every other byte is unchanged."""
        cache = str(tmp_path / "cache")
        _, plain = run_cli("run", "Haar", "--seeds", "1,2")
        _, cached = run_cli(
            "run", "Haar", "--seeds", "1,2", "--cache-dir", cache
        )
        stripped = [
            line for line in cached.splitlines() if "cache" not in line
        ]
        assert stripped == plain.splitlines()
