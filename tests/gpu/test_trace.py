"""Tests for the FP trace collector."""


from repro.gpu.trace import FpTraceCollector, NullTraceCollector, TraceEvent
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic

ADD = opcode_by_mnemonic("ADD")
SQRT = opcode_by_mnemonic("SQRT")


class TestNullCollector:
    def test_discards_everything(self):
        collector = NullTraceCollector()
        collector.record(0, 0, ADD, (1.0, 2.0), 3.0)
        assert not collector.enabled


class TestFpTraceCollector:
    def test_records_events_in_order(self):
        collector = FpTraceCollector()
        collector.record(0, 1, ADD, (1.0, 2.0), 3.0)
        collector.record(0, 2, SQRT, (4.0,), 2.0)
        assert len(collector) == 2
        assert collector.events[0].lane_index == 1
        assert collector.events[1].opcode is SQRT

    def test_capacity_limit_drops_excess(self):
        collector = FpTraceCollector(capacity=2)
        for i in range(5):
            collector.record(0, 0, ADD, (float(i), 0.0), float(i))
        assert len(collector) == 2
        assert collector.dropped == 3

    def test_per_fpu_streams_grouping(self):
        collector = FpTraceCollector()
        collector.record(0, 0, ADD, (1.0, 1.0), 2.0)
        collector.record(0, 0, SQRT, (4.0,), 2.0)
        collector.record(0, 1, ADD, (2.0, 2.0), 4.0)
        collector.record(1, 0, ADD, (3.0, 3.0), 6.0)
        streams = collector.per_fpu_streams()
        assert len(streams) == 4
        assert len(streams[(0, 0, UnitKind.ADD)]) == 1
        assert (0, 0, UnitKind.SQRT) in streams
        assert (1, 0, UnitKind.ADD) in streams

    def test_iter_unit_filters(self):
        collector = FpTraceCollector()
        collector.record(0, 0, ADD, (1.0, 1.0), 2.0)
        collector.record(0, 0, SQRT, (4.0,), 2.0)
        sqrt_events = list(collector.iter_unit(UnitKind.SQRT))
        assert len(sqrt_events) == 1
        assert sqrt_events[0].result == 2.0

    def test_event_unit_property(self):
        event = TraceEvent(0, 0, SQRT, (9.0,), 3.0)
        assert event.unit is UnitKind.SQRT

    def test_device_level_tracing(self, tiny_sim):
        from dataclasses import replace

        from repro.gpu.executor import GpuExecutor
        from repro.kernels.api import Buffer

        config = replace(tiny_sim, collect_traces=True)
        executor = GpuExecutor(config)

        def k(ctx, buf):
            value = buf.load(ctx.global_id)
            yield ctx.fadd(value, 1.0)

        executor.run(k, 4, (Buffer.zeros(4),))
        trace = executor.device.trace
        assert isinstance(trace, FpTraceCollector)
        assert len(trace) == 4
