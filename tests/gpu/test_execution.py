"""Tests for stream cores, compute units, dispatcher, device and executor."""

import pytest

from repro.config import MemoConfig, TimingConfig
from repro.errors import ArchitectureError, KernelError
from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.dispatcher import UltraThreadDispatcher
from repro.gpu.executor import GpuExecutor, ReferenceExecutor
from repro.gpu.stream_core import StreamCore
from repro.gpu.trace import FpTraceCollector
from repro.gpu.wavefront import Wavefront, WorkItem
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic
from repro.kernels.api import Buffer

ADD = opcode_by_mnemonic("ADD")
SQRT = opcode_by_mnemonic("SQRT")


def scale_kernel(ctx, src, dst, factor):
    """y = factor*x + 1"""
    x = src.load(ctx.global_id)
    y = yield ctx.fmul(x, factor)
    z = yield ctx.fadd(y, 1.0)
    dst.store(ctx.global_id, z)


def sqrt_kernel(ctx, src, dst):
    x = src.load(ctx.global_id)
    y = yield ctx.fsqrt(x)
    dst.store(ctx.global_id, y)


class TestStreamCore:
    def test_routes_to_correct_unit(self, tiny_arch):
        core = StreamCore(0, 0, tiny_arch, MemoConfig(), TimingConfig())
        assert core.execute(ADD, (1.0, 2.0)) == 3.0
        assert core.execute(SQRT, (9.0,)) == 3.0
        assert core.counters()[UnitKind.ADD].ops == 1
        assert core.counters()[UnitKind.SQRT].ops == 1

    def test_each_unit_has_private_lut(self, tiny_arch):
        core = StreamCore(0, 0, tiny_arch, MemoConfig(), TimingConfig())
        core.execute(ADD, (1.0, 2.0))
        core.execute(ADD, (1.0, 2.0))
        stats = core.lut_stats()
        assert stats[UnitKind.ADD].hits == 1
        assert stats[UnitKind.SQRT].hits == 0

    def test_baseline_has_no_lut_stats(self, tiny_arch):
        core = StreamCore(0, 0, tiny_arch, None, TimingConfig())
        core.execute(ADD, (1.0, 2.0))
        assert core.lut_stats() == {}

    def test_lane_bounds_checked(self, tiny_arch):
        with pytest.raises(ArchitectureError):
            StreamCore(0, 99, tiny_arch, MemoConfig(), TimingConfig())

    def test_trace_recording(self, tiny_arch):
        trace = FpTraceCollector()
        core = StreamCore(0, 1, tiny_arch, MemoConfig(), TimingConfig(), trace)
        core.execute(ADD, (1.0, 2.0))
        assert len(trace) == 1
        event = trace.events[0]
        assert event.lane_index == 1 and event.result == 3.0


class TestComputeUnitScheduling:
    def test_subwavefront_interleaving_order(self, tiny_arch):
        """Per instruction, lanes see items w, w+L, w+2L... in order."""
        trace = FpTraceCollector()
        cu = ComputeUnit(0, tiny_arch, MemoConfig(), TimingConfig(), trace)

        def tagged_kernel(ctx):
            # Two FP ops; operand encodes the work-item id.
            a = yield ctx.fadd(float(ctx.global_id), 0.0)
            yield ctx.fmul(a, 1.0)

        items = [
            WorkItem(i, i, 0, coroutine=tagged_kernel(_ctx(i)))
            for i in range(8)
        ]
        cu.execute_wavefront(Wavefront(0, items))
        # Lane 0 runs items 0 and 4: first instruction of both precedes
        # the second instruction of either.
        lane0 = [
            e.operands[0]
            for e in trace.events
            if e.lane_index == 0 and e.opcode is ADD
        ]
        assert lane0 == [0.0, 4.0]
        # ADD of item 4 (slot 1) must come before MUL of item 0 (instr 2).
        kinds = [
            (e.opcode.mnemonic, e.operands[0])
            for e in trace.events
            if e.lane_index == 0
        ]
        assert kinds.index(("ADD", 4.0)) < kinds.index(("MUL", 0.0))

    def test_instruction_rounds_counted(self, tiny_arch):
        cu = ComputeUnit(0, tiny_arch, MemoConfig(), TimingConfig())

        def k(ctx):
            yield ctx.fadd(1.0, 1.0)
            yield ctx.fadd(2.0, 2.0)

        items = [WorkItem(i, i, 0, coroutine=k(_ctx(i))) for i in range(4)]
        cu.execute_wavefront(Wavefront(0, items))
        assert cu.instruction_rounds == 2
        assert cu.wavefronts_executed == 1

    def test_ragged_coroutine_lengths(self, tiny_arch):
        cu = ComputeUnit(0, tiny_arch, MemoConfig(), TimingConfig())

        def k(ctx):
            for _ in range(ctx.global_id + 1):
                yield ctx.fadd(1.0, 1.0)

        items = [WorkItem(i, i, 0, coroutine=k(_ctx(i))) for i in range(4)]
        cu.execute_wavefront(Wavefront(0, items))
        assert cu.executed_ops == 1 + 2 + 3 + 4

    def test_empty_coroutine_work_item(self, tiny_arch):
        cu = ComputeUnit(0, tiny_arch, MemoConfig(), TimingConfig())

        def empty(ctx):
            return
            yield  # pragma: no cover

        items = [WorkItem(0, 0, 0, coroutine=empty(_ctx(0)))]
        cu.execute_wavefront(Wavefront(0, items))
        assert cu.executed_ops == 0


def _ctx(i):
    from repro.kernels.api import WorkItemCtx

    return WorkItemCtx(global_id=i)


class TestDispatcher:
    def test_round_robin(self):
        dispatcher = UltraThreadDispatcher(3)
        wavefronts = [Wavefront(i, []) for i in range(7)]
        assignment = dispatcher.assign(wavefronts)
        assert [w.index for w in assignment[0]] == [0, 3, 6]
        assert [w.index for w in assignment[1]] == [1, 4]
        assert dispatcher.dispatched == 7

    def test_invalid_unit_count(self):
        with pytest.raises(ArchitectureError):
            UltraThreadDispatcher(0)


class TestGpuExecutor:
    def test_kernel_computes_correctly(self, tiny_sim):
        src = Buffer([1.0, 2.0, 3.0, 4.0])
        dst = Buffer.zeros(4)
        executor = GpuExecutor(tiny_sim)
        result = executor.run(scale_kernel, 4, (src, dst, 2.0))
        assert list(dst.to_array()) == [3.0, 5.0, 7.0, 9.0]
        assert result.executed_ops == 8
        assert result.wavefront_count == 1

    def test_multiple_wavefronts(self, tiny_sim):
        src = Buffer.zeros(20)
        dst = Buffer.zeros(20)
        executor = GpuExecutor(tiny_sim)
        result = executor.run(scale_kernel, 20, (src, dst, 1.0))
        assert result.wavefront_count == 3  # 8-item wavefronts

    def test_hit_rates_exposed(self, tiny_sim):
        src = Buffer.zeros(8)  # identical inputs -> massive locality
        dst = Buffer.zeros(8)
        executor = GpuExecutor(tiny_sim)
        result = executor.run(scale_kernel, 8, (src, dst, 2.0))
        # 2 items per lane: the first misses, the second hits -> exactly 1/2.
        assert result.weighted_hit_rate() == pytest.approx(0.5)
        assert UnitKind.MUL in result.hit_rates()

    def test_baseline_mode_has_no_hits(self, tiny_sim):
        src = Buffer.zeros(8)
        dst = Buffer.zeros(8)
        executor = GpuExecutor(tiny_sim, memoized=False)
        result = executor.run(scale_kernel, 8, (src, dst, 2.0))
        assert result.lut_stats() == {}
        assert result.weighted_hit_rate() == 0.0

    def test_non_generator_kernel_rejected(self, tiny_sim):
        def not_a_generator(ctx):
            return 42

        executor = GpuExecutor(tiny_sim)
        with pytest.raises(KernelError):
            executor.run(not_a_generator, 4)

    def test_zero_global_size_rejected(self, tiny_sim):
        executor = GpuExecutor(tiny_sim)
        with pytest.raises(KernelError):
            executor.run(scale_kernel, 0)

    def test_stats_accumulate_across_runs(self, tiny_sim):
        src, dst = Buffer.zeros(4), Buffer.zeros(4)
        executor = GpuExecutor(tiny_sim)
        executor.run(scale_kernel, 4, (src, dst, 2.0))
        executor.run(scale_kernel, 4, (src, dst, 2.0))
        assert executor.device.executed_ops == 16

    def test_device_reset(self, tiny_sim):
        src, dst = Buffer.zeros(4), Buffer.zeros(4)
        executor = GpuExecutor(tiny_sim)
        executor.run(scale_kernel, 4, (src, dst, 2.0))
        executor.device.reset_stats()
        assert executor.device.executed_ops == 0


class TestReferenceExecutor:
    def test_matches_device_functional_output(self, tiny_sim):
        src_data = [1.0, 4.0, 9.0, 16.0]
        dev_src, dev_dst = Buffer(src_data), Buffer.zeros(4)
        GpuExecutor(tiny_sim).run(sqrt_kernel, 4, (dev_src, dev_dst))

        ref_src, ref_dst = Buffer(src_data), Buffer.zeros(4)
        ReferenceExecutor().run(sqrt_kernel, 4, (ref_src, ref_dst))
        assert list(dev_dst.to_array()) == list(ref_dst.to_array())

    def test_counts_ops(self):
        src, dst = Buffer.zeros(4), Buffer.zeros(4)
        ref = ReferenceExecutor()
        ops = ref.run(scale_kernel, 4, (src, dst, 1.0))
        assert ops == 8
        assert ref.executed_ops == 8

    def test_wavefront_size_shapes_geometry(self, tiny_sim):
        # Regression: the reference executor hardcoded a 64-item wavefront,
        # so kernels reading local_id/group_id saw a different NDRange
        # geometry than the simulated device (wavefront_size=8 here).
        def geometry_kernel(ctx, dst):
            value = yield ctx.fmuladd(
                float(ctx.group_id), 100.0, float(ctx.local_id)
            )
            dst.store(ctx.global_id, value)

        dev_dst = Buffer.zeros(16)
        GpuExecutor(tiny_sim).run(geometry_kernel, 16, (dev_dst,))

        ref_dst = Buffer.zeros(16)
        wf = tiny_sim.arch.wavefront_size
        ReferenceExecutor(wavefront_size=wf).run(geometry_kernel, 16, (ref_dst,))
        assert list(dev_dst.to_array()) == list(ref_dst.to_array())

        # The old hardcoded geometry (64) disagrees for 16 items at wf=8.
        stale_dst = Buffer.zeros(16)
        ReferenceExecutor().run(geometry_kernel, 16, (stale_dst,))
        assert list(stale_dst.to_array()) != list(ref_dst.to_array())

    def test_invalid_wavefront_size_rejected(self):
        with pytest.raises(KernelError):
            ReferenceExecutor(wavefront_size=0)


class TestDeviceEnergyReport:
    def test_report_covers_only_activated_units(self, tiny_sim):
        src, dst = Buffer.zeros(4), Buffer.zeros(4)
        executor = GpuExecutor(tiny_sim)
        executor.run(scale_kernel, 4, (src, dst, 2.0))
        report = executor.device.energy_report()
        assert set(report.per_unit) == {UnitKind.ADD, UnitKind.MUL}

    def test_memoized_cheaper_on_redundant_input(self, tiny_sim):
        src, dst = Buffer.zeros(16), Buffer.zeros(16)
        memo_ex = GpuExecutor(tiny_sim)
        memo_ex.run(scale_kernel, 16, (src, dst, 2.0))
        base_ex = GpuExecutor(tiny_sim, memoized=False)
        base_ex.run(scale_kernel, 16, (src, dst, 2.0))
        saving = memo_ex.device.energy_report().saving_vs(
            base_ex.device.energy_report()
        )
        assert saving > 0.2
