"""Tests for ISA-program execution on the simulated device."""

import numpy as np
import pytest

from repro.config import (
    ArchConfig,
    MemoConfig,
    SimConfig,
    TelemetryConfig,
    TracingConfig,
    small_arch,
)
from repro.errors import KernelError
from repro.gpu.executor import GpuExecutor
from repro.gpu.isa_executor import IsaKernelExecutor, iter_program_fp_ops
from repro.gpu.memory import GlobalMemory
from repro.isa.assembler import assemble
from repro.isa.interpreter import ScalarInterpreter
from repro.telemetry.events import EventKind
from repro.tracing.timeline import INSTANT_CLAUSE

# SAXPY-style: r0 = global id; load x[i]; y = 2.5*x + 1; result in r1.
SAXPY = """
CF EXEC_TEX @load
CF EXEC_ALU @compute
CF END

TEX @load:
  LOAD r2, [r0]

ALU @compute:
  X: MULADD r1, r2, 2.5, 1.0
"""

LOOPED = """
CF LOOP 4
CF EXEC_ALU @body
CF ENDLOOP
CF END

ALU @body:
  X: ADD r1, r1, 1.0
"""


def make_isa_executor(memo_threshold=0.0):
    config = SimConfig(
        arch=small_arch(), memo=MemoConfig(threshold=memo_threshold)
    )
    return IsaKernelExecutor(GpuExecutor(config))


class TestIterProgramFpOps:
    def test_yields_fp_ops_and_applies_results(self):
        program = assemble(LOOPED)
        registers = {}
        gen = iter_program_fp_ops(program, registers, GlobalMemory(0))
        request = gen.send(None)
        count = 0
        try:
            while True:
                opcode, operands = request
                assert opcode.mnemonic == "ADD"
                count += 1
                request = gen.send(operands[0] + operands[1])
        except StopIteration:
            pass
        assert count == 4
        assert registers[1] == 4.0

    def test_injected_results_propagate(self):
        """Whatever the device sends back (e.g. an approximate memo hit)
        must feed the next iteration's operands."""
        program = assemble(LOOPED)
        registers = {}
        gen = iter_program_fp_ops(program, registers, GlobalMemory(0))
        gen.send(None)
        try:
            while True:
                gen.send(42.0)  # override every result
        except StopIteration:
            pass
        assert registers[1] == 42.0


class TestIsaKernelExecutor:
    def test_saxpy_over_ndrange(self):
        n = 32
        memory = GlobalMemory(2 * n)
        x = np.arange(n, dtype=np.float32)
        memory.view()[:n] = x
        program = assemble(SAXPY)

        isa_exec = make_isa_executor()
        result = isa_exec.run(program, n, memory, result_register=1, out_base=n)

        out = memory.as_array()[n:]
        assert np.allclose(out, 2.5 * x + 1.0)
        assert result.executed_ops == n  # one MULADD per item

    def test_matches_scalar_interpreter(self):
        n = 8
        memory_values = [float(i * i % 7) for i in range(n)]
        program = assemble(SAXPY)

        memory = GlobalMemory(2 * n)
        memory.view()[:n] = memory_values
        isa_exec = make_isa_executor()
        isa_exec.run(program, n, memory, out_base=n)
        device_out = memory.as_array()[n:]

        for gid in range(n):
            interp = ScalarInterpreter(memory=memory_values)
            interp.registers[0] = float(gid)
            regs = interp.run(program)
            assert device_out[gid] == regs[1]

    def test_memoization_applies_to_isa_programs(self):
        n = 64
        memory = GlobalMemory(2 * n)  # all zeros: maximal locality
        program = assemble(SAXPY)
        isa_exec = make_isa_executor()
        result = isa_exec.run(program, n, memory, out_base=n)
        assert result.weighted_hit_rate() > 0.5

    def test_looped_program_on_device(self):
        n = 4
        memory = GlobalMemory(n)
        program = assemble(LOOPED)
        isa_exec = make_isa_executor()
        isa_exec.run(program, n, memory, result_register=1, out_base=0)
        assert list(memory.as_array()) == [4.0] * n

    def test_invalid_global_size(self):
        isa_exec = make_isa_executor()
        with pytest.raises(KernelError):
            isa_exec.run(assemble(LOOPED), 0, GlobalMemory(4))


def make_observed_isa_executor(num_compute_units=2):
    config = SimConfig(
        arch=ArchConfig(
            num_compute_units=num_compute_units,
            stream_cores_per_cu=4,
            wavefront_size=8,
        ),
        memo=MemoConfig(threshold=0.0),
        telemetry=TelemetryConfig(enabled=True),
        tracing=TracingConfig(enabled=True),
    )
    return IsaKernelExecutor(GpuExecutor(config))


class TestClauseBoundaries:
    def test_interpreter_reports_clause_entries(self):
        program = assemble(LOOPED)
        seen = []
        gen = iter_program_fp_ops(
            program, {}, GlobalMemory(0), on_clause=seen.append
        )
        try:
            request = gen.send(None)
            while True:
                request = gen.send(sum(request[1]))
        except StopIteration:
            pass
        # One ALU clause entry per loop iteration.
        assert seen == ["ALU"] * 4

    def test_wavefront_leads_emit_clause_instants(self):
        n = 32  # 4 wavefronts of 8 over 2 compute units
        isa_exec = make_observed_isa_executor()
        memory = GlobalMemory(2 * n)
        isa_exec.run(assemble(SAXPY), n, memory, out_base=n)

        tracer = isa_exec.executor.tracer
        instants = [e for e in tracer.events if e.name == INSTANT_CLAUSE]
        # SAXPY enters TEX then ALU once; one lead work-item per wavefront.
        assert len(instants) == 4 * 2
        assert {e.args["clause"] for e in instants} == {"ALU", "TEX"}
        assert {e.pid for e in instants} == {0, 1}

        hub = isa_exec.executor.telemetry
        boundary_events = [
            record
            for record in hub.events.to_list()
            if record.kind is EventKind.CLAUSE_BOUNDARY
        ]
        assert len(boundary_events) == 4 * 2

    def test_untraced_run_emits_nothing(self):
        n = 8
        isa_exec = make_isa_executor()
        isa_exec.run(assemble(SAXPY), n, GlobalMemory(2 * n), out_base=n)
        assert isa_exec.executor.tracer is None
        assert isa_exec.executor.telemetry is None
