"""Tests for the launch performance model."""

import pytest

from repro.config import ArchConfig, MemoConfig, SimConfig, TimingConfig
from repro.errors import ArchitectureError
from repro.gpu.executor import GpuExecutor
from repro.gpu.performance import (
    LanePerformance,
    PerformanceReport,
    performance_report,
)
from repro.kernels.api import Buffer


def lane(cu, idx, ops, stalls=0):
    return LanePerformance(cu, idx, ops, stalls)


class TestReportAggregation:
    def test_lane_busy_cycles(self):
        assert lane(0, 0, 100, 24).busy_cycles == 124

    def test_cu_bound_by_slowest_lane(self):
        report = PerformanceReport(
            lanes=[lane(0, 0, 100), lane(0, 1, 80, 36)], total_ops=180
        )
        assert report.cu_cycles == {0: 116}

    def test_device_bound_by_slowest_cu(self):
        report = PerformanceReport(
            lanes=[lane(0, 0, 100), lane(1, 0, 150)], total_ops=250
        )
        assert report.device_cycles == 150

    def test_throughput(self):
        report = PerformanceReport(
            lanes=[lane(0, i, 100) for i in range(4)], total_ops=400
        )
        assert report.ops_per_cycle == pytest.approx(4.0)

    def test_stall_fraction(self):
        report = PerformanceReport(
            lanes=[lane(0, 0, 90, 10)], total_ops=90
        )
        assert report.stall_fraction == pytest.approx(0.1)

    def test_empty_report(self):
        report = PerformanceReport(lanes=[], total_ops=0)
        assert report.device_cycles == 0
        assert report.ops_per_cycle == 0.0
        assert report.stall_fraction == 0.0

    def test_slowdown(self):
        fast = PerformanceReport(lanes=[lane(0, 0, 100)], total_ops=100)
        slow = PerformanceReport(lanes=[lane(0, 0, 100, 100)], total_ops=100)
        assert slow.slowdown_vs(fast) == pytest.approx(2.0)
        with pytest.raises(ArchitectureError):
            fast.slowdown_vs(PerformanceReport(lanes=[], total_ops=0))


class TestEmptyRuns:
    """The empty-run story: 0.0 conventions are flagged, not ambiguous."""

    def test_empty_flag(self):
        assert PerformanceReport(lanes=[], total_ops=0).empty
        # Lanes that never issued anything still make an empty report.
        assert PerformanceReport(lanes=[lane(0, 0, 0)], total_ops=0).empty
        assert not PerformanceReport(lanes=[lane(0, 0, 1)], total_ops=1).empty

    def test_two_empty_runs_compare_as_equal(self):
        a = PerformanceReport(lanes=[], total_ops=0)
        b = PerformanceReport(lanes=[lane(0, 0, 0)], total_ops=0)
        assert a.slowdown_vs(b) == 1.0
        assert b.slowdown_vs(a) == 1.0

    def test_empty_reference_raises_with_context(self):
        run = PerformanceReport(lanes=[lane(0, 0, 50)], total_ops=50)
        empty = PerformanceReport(lanes=[], total_ops=0)
        with pytest.raises(ArchitectureError, match="executed no FP ops"):
            run.slowdown_vs(empty)

    def test_fresh_device_report_is_empty(self):
        executor = GpuExecutor(SimConfig(arch=ArchConfig(num_compute_units=1)))
        report = performance_report(executor.device)
        assert report.empty
        assert report.ops_per_cycle == 0.0
        assert report.stall_fraction == 0.0


class TestDeviceIntegration:
    def _run(self, error_rate=0.0, memoized=True, n=64):
        arch = ArchConfig(
            num_compute_units=1, stream_cores_per_cu=4, wavefront_size=8
        )
        config = SimConfig(
            arch=arch,
            memo=MemoConfig(threshold=0.0),
            timing=TimingConfig(error_rate=error_rate),
        )
        executor = GpuExecutor(config, memoized=memoized)

        def k(ctx, buf):
            x = buf.load(ctx.global_id)
            y = yield ctx.fadd(x, 1.0)
            z = yield ctx.fmul(y, 2.0)
            buf.store(ctx.global_id, z)

        executor.run(k, n, (Buffer.zeros(n),))
        return performance_report(executor.device)

    def test_error_free_cycles_equal_lane_ops(self):
        report = self._run()
        # 64 items x 2 ops over 4 lanes = 32 ops per lane.
        assert report.device_cycles == 32
        assert report.total_ops == 128
        assert report.stall_fraction == 0.0

    def test_errors_add_recovery_stalls_to_baseline(self):
        clean = self._run(error_rate=0.0, memoized=False)
        errant = self._run(error_rate=0.10, memoized=False)
        assert errant.device_cycles > clean.device_cycles
        assert errant.recovery_stall_cycles > 0
        # Every stall is a multiple of the 12-cycle recovery window.
        assert errant.recovery_stall_cycles % 12 == 0

    def test_memoization_reduces_stalls(self):
        base = self._run(error_rate=0.10, memoized=False)
        memo = self._run(error_rate=0.10, memoized=True)
        assert memo.recovery_stall_cycles < base.recovery_stall_cycles
