"""Tests for the execute-stage scheduling modes."""

import numpy as np
import pytest

from repro.config import MemoConfig, SimConfig, small_arch
from repro.errors import ConfigError
from repro.gpu.executor import GpuExecutor
from repro.images.synth import synth_face
from repro.kernels.sobel import SobelWorkload
from repro.kernels.registry import workload_by_name


class TestScheduleConfig:
    def test_default_is_subwavefront(self):
        assert SimConfig().schedule == "subwavefront"

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(schedule="round-robin")

    def test_item_serial_accepted(self):
        assert SimConfig(schedule="item-serial").schedule == "item-serial"


class TestScheduleEquivalence:
    """Scheduling changes statistics, never functional results."""

    def _run(self, schedule, threshold=0.0):
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(threshold=threshold),
            schedule=schedule,
        )
        executor = GpuExecutor(config)
        out = SobelWorkload(synth_face(16)).run(executor)
        return out, executor

    def test_exact_matching_outputs_identical(self):
        out_multiplexed, _ = self._run("subwavefront")
        out_serial, _ = self._run("item-serial")
        assert np.array_equal(out_multiplexed, out_serial)

    def test_op_counts_identical(self):
        _, ex_multiplexed = self._run("subwavefront")
        _, ex_serial = self._run("item-serial")
        assert ex_multiplexed.device.executed_ops == ex_serial.device.executed_ops

    def test_hit_rates_may_differ(self):
        """The schedules are allowed (expected) to produce different
        locality; this pins the EigenValue collapse from the ablation."""
        def workload_factory():
            return workload_by_name("EigenValue")

        def hit_rate(schedule):
            config = SimConfig(
                arch=small_arch(), memo=MemoConfig(threshold=0.0), schedule=schedule
            )
            executor = GpuExecutor(config)
            workload_factory().run(executor)
            stats = executor.device.lut_stats()
            return sum(s.hits for s in stats.values()) / sum(
                s.lookups for s in stats.values()
            )

        assert hit_rate("subwavefront") > 2 * hit_rate("item-serial")

    def test_item_serial_counts_rounds_per_op(self):
        from repro.gpu.compute_unit import ComputeUnit
        from repro.gpu.wavefront import Wavefront, WorkItem
        from repro.kernels.api import WorkItemCtx
        from repro.config import ArchConfig, TimingConfig

        arch = ArchConfig(
            num_compute_units=1, stream_cores_per_cu=4, wavefront_size=8
        )
        cu = ComputeUnit(0, arch, MemoConfig(), TimingConfig())

        def k(ctx):
            yield ctx.fadd(1.0, 1.0)
            yield ctx.fadd(2.0, 2.0)

        items = [
            WorkItem(i, i, 0, coroutine=k(WorkItemCtx(global_id=i)))
            for i in range(4)
        ]
        cu.execute_wavefront(Wavefront(0, items), schedule="item-serial")
        assert cu.executed_ops == 8
        assert cu.wavefronts_executed == 1

    def test_bad_schedule_string_at_cu_level(self):
        from repro.errors import WorkItemProtocolError
        from repro.gpu.compute_unit import ComputeUnit
        from repro.gpu.wavefront import Wavefront
        from repro.config import ArchConfig, TimingConfig

        arch = ArchConfig(
            num_compute_units=1, stream_cores_per_cu=4, wavefront_size=8
        )
        cu = ComputeUnit(0, arch, MemoConfig(), TimingConfig())
        with pytest.raises(WorkItemProtocolError):
            cu.execute_wavefront(Wavefront(0, []), schedule="bogus")
