"""Tests for wavefront packing and subwavefront mapping."""

import pytest

from repro.config import ArchConfig
from repro.gpu.wavefront import WorkItem, Wavefront, split_into_wavefronts


def items(n):
    return [WorkItem(global_id=i, local_id=i % 64, group_id=i // 64) for i in range(n)]


class TestSplitting:
    def test_full_wavefronts(self):
        arch = ArchConfig()
        wavefronts = split_into_wavefronts(items(128), arch)
        assert len(wavefronts) == 2
        assert all(len(w) == 64 for w in wavefronts)

    def test_ragged_tail(self):
        arch = ArchConfig()
        wavefronts = split_into_wavefronts(items(70), arch)
        assert len(wavefronts) == 2
        assert len(wavefronts[1]) == 6

    def test_indices_sequential(self):
        arch = ArchConfig()
        wavefronts = split_into_wavefronts(items(130), arch)
        assert [w.index for w in wavefronts] == [0, 1, 2]

    def test_empty(self):
        assert split_into_wavefronts([], ArchConfig()) == []


class TestMapping:
    def test_lane_assignment_is_modulo(self):
        arch = ArchConfig()
        wavefront = Wavefront(0, items(64))
        assert wavefront.lane_of(0, arch) == 0
        assert wavefront.lane_of(15, arch) == 15
        assert wavefront.lane_of(16, arch) == 0
        assert wavefront.lane_of(63, arch) == 15

    def test_subwavefront_assignment(self):
        arch = ArchConfig()
        wavefront = Wavefront(0, items(64))
        assert wavefront.subwavefront_of(0, arch) == 0
        assert wavefront.subwavefront_of(15, arch) == 0
        assert wavefront.subwavefront_of(16, arch) == 1
        assert wavefront.subwavefront_of(63, arch) == 3

    def test_four_subwavefronts_on_evergreen(self):
        arch = ArchConfig()
        assert arch.subwavefronts_per_wavefront == 4

    def test_subwavefront_positions(self):
        arch = ArchConfig()
        wavefront = Wavefront(0, items(64))
        assert list(wavefront.subwavefront_positions(1, arch)) == list(range(16, 32))

    def test_subwavefront_positions_ragged(self):
        arch = ArchConfig()
        wavefront = Wavefront(0, items(20))
        assert list(wavefront.subwavefront_positions(1, arch)) == list(range(16, 20))

    def test_live_items(self):
        wavefront = Wavefront(0, items(4))
        assert wavefront.live_items == 4
        wavefront.work_items[0].done = True
        assert wavefront.live_items == 3

    def test_negative_index_rejected(self):
        with pytest.raises(Exception):
            Wavefront(-1, [])
