"""Backend equivalence and fast-path pinning under the fault-model zoo.

Two contracts are pinned here.  First, the vector backend's error-free
fast path may only be taken for injectors whose rate is *statically*
zero — injectors that declare ``dynamic = True`` must be sampled every
instruction even when their construction-time rate reads 0.0 (the
original static snapshot silently dropped every error such an injector
would later produce).  Second, every fault model in the zoo must run
bit-identically on the scalar and vector backends.
"""

import numpy as np
import pytest

from repro.config import (
    MemoConfig,
    SimConfig,
    TelemetryConfig,
    TimingConfig,
    small_arch,
)
from repro.gpu.executor import GpuExecutor
from repro.kernels.registry import KERNEL_REGISTRY
from repro.timing.faults import FaultModelSpec


def _run(kernel: str, config: SimConfig, patch_injector=None):
    executor = GpuExecutor(config)
    if patch_injector is not None:
        for unit in executor.device.compute_units:
            for core in unit.stream_cores:
                for fpu in core.fpus.values():
                    fpu.injector = patch_injector()
    output = KERNEL_REGISTRY[kernel].default_factory().run(executor)
    return executor, output


def _assert_equivalent(kernel: str, scalar_cfg: SimConfig, patch=None):
    s_ex, s_out = _run(kernel, scalar_cfg, patch)
    v_ex, v_out = _run(kernel, scalar_cfg.with_backend("vector"), patch)
    assert np.asarray(s_out, dtype=np.float32).tobytes() == np.asarray(
        v_out, dtype=np.float32
    ).tobytes()
    assert s_ex.device.lut_stats() == v_ex.device.lut_stats()
    assert s_ex.device.ecu_stats() == v_ex.device.ecu_stats()
    assert s_ex.device.counters() == v_ex.device.counters()
    assert s_ex.device.executed_ops == v_ex.device.executed_ops
    if scalar_cfg.telemetry.enabled:
        assert (
            s_ex.telemetry.registry.snapshot()
            == v_ex.telemetry.registry.snapshot()
        )
    return s_ex


class DelayedOnsetInjector:
    """Rate reads 0.0 at construction, then every op errs after ``after``.

    Deterministic (no RNG), so both backends see identical error
    positions as long as they actually call :meth:`sample` — which is
    exactly what ``dynamic = True`` must guarantee.
    """

    dynamic = True

    def __init__(self, after: int) -> None:
        self.rate = 0.0
        self.after = after
        self.calls = 0

    def sample(self) -> bool:
        self.calls += 1
        if self.calls > self.after:
            self.rate = 1.0
            return True
        return False


class TestDynamicRatePinning:
    """Regression for the static no_error/rate snapshot in _KindState."""

    def _config(self, backend="scalar"):
        return SimConfig(
            arch=small_arch(),
            memo=MemoConfig(),
            timing=TimingConfig(error_rate=0.0),
            backend=backend,
        )

    def test_vector_backend_samples_dynamic_zero_rate_injectors(self):
        executor = _assert_equivalent(
            "Haar", self._config(), patch=lambda: DelayedOnsetInjector(10)
        )
        injected = sum(
            c.errors_injected for c in executor.device.counters().values()
        )
        # The onset fired: with the old construction-time snapshot the
        # vector backend would have reported zero injections here.
        assert injected > 0

    def test_static_zero_rate_fast_path_still_error_free(self):
        executor = _assert_equivalent("Haar", self._config())
        assert all(
            c.errors_injected == 0
            for c in executor.device.counters().values()
        )


class TestFaultModelBackendEquivalence:
    """Every zoo model is bit-identical across backends (two kernels)."""

    def _config(self, spec, error_rate=0.02):
        return SimConfig(
            arch=small_arch(),
            memo=MemoConfig(update_on_timing_error=True),
            timing=TimingConfig(
                error_rate=error_rate, seed=11, fault_model=spec
            ),
            telemetry=TelemetryConfig(enabled=True),
        )

    @pytest.mark.parametrize("kernel", ["Haar", "FWT"])
    def test_bernoulli(self, kernel):
        _assert_equivalent(kernel, self._config(FaultModelSpec()))

    @pytest.mark.parametrize("kernel", ["Haar", "FWT"])
    def test_burst(self, kernel):
        spec = FaultModelSpec(
            kind="burst", burst_rate=0.5, burst_enter=0.02, burst_exit=0.1
        )
        executor = _assert_equivalent(kernel, self._config(spec))
        injected = sum(
            c.errors_injected for c in executor.device.counters().values()
        )
        assert injected > 0

    @pytest.mark.parametrize("kernel", ["Haar", "FWT"])
    def test_spatial(self, kernel):
        spec = FaultModelSpec(kind="spatial", spatial_sigma=1.5)
        _assert_equivalent(kernel, self._config(spec, error_rate=0.05))

    @pytest.mark.parametrize("kernel", ["Haar", "FWT"])
    def test_stuck_at(self, kernel):
        spec = FaultModelSpec(kind="stuck-at", stuck_fraction=0.25)
        _assert_equivalent(kernel, self._config(spec))

    @pytest.mark.parametrize("kernel", ["Haar", "FWT"])
    def test_lut_bitflip(self, kernel):
        spec = FaultModelSpec(kind="lut-bitflip", bitflip_rate=0.02)
        executor = _assert_equivalent(kernel, self._config(spec))
        flips = sum(
            s.bitflips for s in executor.device.lut_stats().values()
        )
        assert flips > 0

    @pytest.mark.parametrize("kernel", ["Haar", "FWT"])
    def test_voltage(self, kernel):
        spec = FaultModelSpec(kind="voltage")
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(),
            timing=TimingConfig(voltage=0.82, seed=11, fault_model=spec),
        )
        executor = _assert_equivalent(kernel, config)
        injected = sum(
            c.errors_injected for c in executor.device.counters().values()
        )
        assert injected > 0


class TestLutBitflipFallback:
    def test_vector_request_falls_back_silently_and_completely(self):
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(),
            timing=TimingConfig(
                error_rate=0.02,
                seed=1,
                fault_model=FaultModelSpec(
                    kind="lut-bitflip", bitflip_rate=0.05
                ),
            ),
            backend="vector",
        )
        executor, _ = _run("Haar", config)
        assert executor.device.executed_ops > 0
        assert sum(
            s.bitflips for s in executor.device.lut_stats().values()
        ) > 0
