"""Tests for memory models and the register file."""

import numpy as np
import pytest

from repro.errors import ArchitectureError
from repro.gpu.memory import ConstantMemory, GlobalMemory, LocalMemory
from repro.gpu.registers import RegisterFile


class TestGlobalMemory:
    def test_size_construction(self):
        mem = GlobalMemory(16)
        assert len(mem) == 16
        assert mem.load(0) == 0.0

    def test_data_construction(self):
        mem = GlobalMemory([1.0, 2.0, 3.0])
        assert len(mem) == 3
        assert mem.load(1) == 2.0

    def test_store_load_roundtrip(self):
        mem = GlobalMemory(4)
        mem.store(2, 1.5)
        assert mem.load(2) == 1.5

    def test_values_quantized_to_float32(self):
        mem = GlobalMemory(1)
        mem.store(0, 0.1)
        assert mem.load(0) == float(np.float32(0.1))

    def test_bounds_checked(self):
        mem = GlobalMemory(4)
        with pytest.raises(ArchitectureError):
            mem.load(4)
        with pytest.raises(ArchitectureError):
            mem.store(-1, 0.0)

    def test_access_counting(self):
        mem = GlobalMemory(4)
        mem.store(0, 1.0)
        mem.load(0)
        mem.load(1)
        assert mem.stores == 1
        assert mem.loads == 2

    def test_as_array_is_a_copy(self):
        mem = GlobalMemory([1.0, 2.0])
        arr = mem.as_array()
        arr[0] = 99.0
        assert mem.load(0) == 1.0

    def test_negative_size_rejected(self):
        with pytest.raises(ArchitectureError):
            GlobalMemory(-1)

    def test_2d_input_flattened(self):
        mem = GlobalMemory(np.ones((2, 3)))
        assert len(mem) == 6


class TestLocalAndConstantMemory:
    def test_local_memory_default_size(self):
        assert len(LocalMemory()) == 8192

    def test_constant_memory_rejects_kernel_stores(self):
        mem = ConstantMemory(4)
        with pytest.raises(ArchitectureError):
            mem.store(0, 1.0)

    def test_constant_memory_preload(self):
        mem = ConstantMemory(4)
        mem.preload([1.0, 2.0], offset=1)
        assert mem.load(1) == 1.0
        assert mem.load(2) == 2.0

    def test_preload_bounds(self):
        mem = ConstantMemory(2)
        with pytest.raises(ArchitectureError):
            mem.preload([1.0, 2.0, 3.0])


class TestRegisterFile:
    def test_default_zero(self):
        regs = RegisterFile(8)
        assert regs.read(3) == 0.0

    def test_write_read(self):
        regs = RegisterFile(8)
        regs.write(2, 1.25)
        assert regs.read(2) == 1.25

    def test_float32_quantization(self):
        regs = RegisterFile(8)
        regs.write(0, 0.1)
        assert regs.read(0) == float(np.float32(0.1))

    def test_bounds(self):
        regs = RegisterFile(8)
        with pytest.raises(ArchitectureError):
            regs.read(8)
        with pytest.raises(ArchitectureError):
            regs.write(-1, 0.0)

    def test_read_ahead_buffer(self):
        regs = RegisterFile(8)
        regs.write(0, 1.0)
        regs.write(1, 2.0)
        assert regs.read_ahead([0, 1]) == (1.0, 2.0)

    def test_access_counting(self):
        regs = RegisterFile(8)
        regs.write(0, 1.0)
        regs.read(0)
        assert regs.writes == 1 and regs.reads == 1

    def test_snapshot(self):
        regs = RegisterFile(8)
        regs.write(1, 5.0)
        assert regs.snapshot() == {1: 5.0}
