"""Tests for the execution-backend protocol and the vector engine.

The load-bearing contract is bit-identical equivalence: the same
``SimConfig`` run through the ``scalar`` and ``vector`` backends must
produce the same outputs, statistics and telemetry.  ``repro verify
--backend-diff`` sweeps the full kernel matrix; these tests pin the
contract on fast small cases plus every fallback edge.
"""

import numpy as np
import pytest

from repro.config import (
    BACKENDS,
    MemoConfig,
    SimConfig,
    TelemetryConfig,
    TimingConfig,
    small_arch,
)
from repro.errors import ConfigError
from repro.gpu.backends import (
    ScalarBackend,
    VectorBackend,
    available_backends,
    create_backend,
)
from repro.gpu.executor import GpuExecutor
from repro.kernels.registry import KERNEL_REGISTRY


def _run(kernel: str, config: SimConfig, memoized: bool = True):
    executor = GpuExecutor(config, memoized=memoized)
    output = KERNEL_REGISTRY[kernel].default_factory().run(executor)
    return executor, output


def _assert_equivalent(kernel: str, scalar_cfg: SimConfig, memoized=True):
    vector_cfg = scalar_cfg.with_backend("vector")
    s_ex, s_out = _run(kernel, scalar_cfg, memoized)
    v_ex, v_out = _run(kernel, vector_cfg, memoized)
    assert np.asarray(s_out, dtype=np.float32).tobytes() == np.asarray(
        v_out, dtype=np.float32
    ).tobytes()
    assert s_ex.device.lut_stats() == v_ex.device.lut_stats()
    assert s_ex.device.ecu_stats() == v_ex.device.ecu_stats()
    assert s_ex.device.counters() == v_ex.device.counters()
    assert s_ex.device.executed_ops == v_ex.device.executed_ops
    if scalar_cfg.telemetry.enabled:
        assert (
            s_ex.telemetry.registry.snapshot()
            == v_ex.telemetry.registry.snapshot()
        )


class TestRegistry:
    def test_config_backends_all_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_create_backend_by_name(self):
        assert isinstance(create_backend("scalar"), ScalarBackend)
        assert isinstance(create_backend("vector"), VectorBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            create_backend("cuda")

    def test_simconfig_validates_backend(self):
        with pytest.raises(ConfigError):
            SimConfig(backend="cuda")

    def test_with_backend(self):
        config = SimConfig()
        assert config.backend == "scalar"
        assert config.with_backend("vector").backend == "vector"


class TestEquivalence:
    def test_sobel_error_free(self):
        _assert_equivalent(
            "Sobel", SimConfig(arch=small_arch(), memo=MemoConfig())
        )

    def test_sobel_with_errors_and_telemetry(self):
        _assert_equivalent(
            "Sobel",
            SimConfig(
                arch=small_arch(2),
                memo=MemoConfig(),
                timing=TimingConfig(error_rate=0.02, seed=7),
                telemetry=TelemetryConfig(enabled=True),
            ),
        )

    def test_blackscholes_threshold_matching(self):
        _assert_equivalent(
            "BlackScholes",
            SimConfig(
                arch=small_arch(),
                memo=MemoConfig(threshold=0.5, update_on_timing_error=True),
                timing=TimingConfig(error_rate=0.02, seed=3),
            ),
        )

    def test_fwt_masked_matching(self):
        _assert_equivalent(
            "FWT",
            SimConfig(
                arch=small_arch(),
                memo=MemoConfig(masked_fraction_bits=12),
            ),
        )

    def test_baseline_unmemoized(self):
        _assert_equivalent(
            "Sobel",
            SimConfig(
                arch=small_arch(),
                memo=MemoConfig(),
                timing=TimingConfig(error_rate=0.02, seed=5),
            ),
            memoized=False,
        )

    def test_deeper_fifo(self):
        _assert_equivalent(
            "Haar",
            SimConfig(arch=small_arch(), memo=MemoConfig(fifo_depth=4)),
        )


class TestFallback:
    def test_item_serial_schedule_falls_back_to_scalar(self):
        scalar = SimConfig(
            arch=small_arch(), memo=MemoConfig(), schedule="item-serial"
        )
        _assert_equivalent("Sobel", scalar)

    def test_fallback_is_silent_and_complete(self):
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(),
            schedule="item-serial",
            backend="vector",
        )
        executor, _ = _run("Sobel", config)
        assert executor.device.executed_ops > 0
