"""Tests for the deterministic adversarial operand corpus."""

import math

import pytest

from repro.errors import ConfigError
from repro.isa.opcodes import opcode_by_mnemonic
from repro.oracle.corpus import (
    CorpusConfig,
    corpus_case_count,
    describe_bits,
    fuzz_operands,
    operand_corpus,
    special_values,
    ulp_adjacent_pairs,
)
from repro.utils.bitops import float32_to_bits, ulp_distance


def op(mnemonic):
    return opcode_by_mnemonic(mnemonic)


class TestSpecialValues:
    def test_covers_every_value_class(self):
        values = special_values()
        bits = {float32_to_bits(v) for v in values}
        assert 0x00000000 in bits and 0x80000000 in bits  # signed zeros
        assert 0x7F800000 in bits and 0xFF800000 in bits  # infinities
        assert any(math.isnan(v) for v in values)
        assert 0x00000001 in bits  # subnormal
        assert 0x4F000000 in bits  # int32 saturation bound

    def test_all_values_are_exact_singles(self):
        # float32_to_bits round-trips only exact singles without change.
        for value in special_values():
            assert isinstance(value, float)

    def test_deterministic_order(self):
        # Compare bit patterns: NaN breaks tuple equality.
        first = [float32_to_bits(v) for v in special_values()]
        second = [float32_to_bits(v) for v in special_values()]
        assert first == second


class TestUlpPairs:
    def test_pairs_are_one_ulp_apart(self):
        for a, b in ulp_adjacent_pairs():
            assert ulp_distance(a, b) == 1


class TestFuzzer:
    def test_same_seed_same_stream(self):
        config = CorpusConfig(seed=7, fuzz_cases=32)
        first = list(fuzz_operands(op("ADD"), config))
        second = list(fuzz_operands(op("ADD"), config))
        assert [tuple(map(float32_to_bits, t)) for t in first] == [
            tuple(map(float32_to_bits, t)) for t in second
        ]

    def test_different_seeds_differ(self):
        a = list(fuzz_operands(op("ADD"), CorpusConfig(seed=0, fuzz_cases=32)))
        b = list(fuzz_operands(op("ADD"), CorpusConfig(seed=1, fuzz_cases=32)))
        assert a != b

    def test_streams_are_per_opcode(self):
        config = CorpusConfig(seed=0, fuzz_cases=32)
        add = list(fuzz_operands(op("ADD"), config))
        mul = list(fuzz_operands(op("MUL"), config))
        assert add != mul

    def test_tuple_arity_matches_opcode(self):
        config = CorpusConfig(fuzz_cases=8)
        for mnemonic in ("FLOOR", "ADD", "MULADD"):
            for operands in fuzz_operands(op(mnemonic), config):
                assert len(operands) == op(mnemonic).arity

    def test_negative_fuzz_cases_rejected(self):
        with pytest.raises(ConfigError):
            CorpusConfig(fuzz_cases=-1)


class TestOperandCorpus:
    @pytest.mark.parametrize("mnemonic", ["FLOOR", "ADD", "MULADD"])
    def test_case_count_matches_enumeration(self, mnemonic):
        config = CorpusConfig(fuzz_cases=16)
        cases = list(operand_corpus(op(mnemonic), config))
        assert len(cases) == corpus_case_count(op(mnemonic), config)

    def test_binary_corpus_contains_nan_inf_pairs(self):
        config = CorpusConfig(fuzz_cases=0)
        cases = list(operand_corpus(op("ADD"), config))
        assert any(math.isnan(a) and math.isinf(b) for a, b in cases)

    def test_corpus_is_deterministic(self):
        config = CorpusConfig(seed=3, fuzz_cases=16)
        first = list(operand_corpus(op("MUL"), config))
        second = list(operand_corpus(op("MUL"), config))
        assert [tuple(map(float32_to_bits, t)) for t in first] == [
            tuple(map(float32_to_bits, t)) for t in second
        ]


class TestDescribeBits:
    def test_canonical_hex_spelling(self):
        assert describe_bits(1.0) == "0x3F800000"
        assert describe_bits(-0.0) == "0x80000000"
