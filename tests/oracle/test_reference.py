"""Tests for the independent NumPy-float32 reference semantics."""

import math

import pytest

from repro.errors import IsaError
from repro.fpu.arithmetic import evaluate, float32
from repro.isa.opcodes import FP_OPCODES, opcode_by_mnemonic
from repro.oracle.reference import (
    ULP_TOLERANCE,
    reference_evaluate,
    results_equivalent,
    ulp_tolerance,
)
from repro.utils.bitops import bits_to_float32, float32_to_bits


def op(mnemonic):
    return opcode_by_mnemonic(mnemonic)


class TestCoverage:
    def test_every_opcode_has_reference_semantics(self):
        for opcode in FP_OPCODES:
            operands = tuple([1.5] * opcode.arity)
            result = reference_evaluate(opcode, operands)
            assert isinstance(result, float)

    def test_results_are_single_precision(self):
        for opcode in FP_OPCODES:
            operands = tuple([float32(1.1)] * opcode.arity)
            result = reference_evaluate(opcode, operands)
            if not math.isnan(result):
                assert result == float32(result)

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(IsaError):
            reference_evaluate(op("ADD"), (1.0,))


class TestUlpTolerance:
    def test_transcendentals_get_one_ulp(self):
        for mnemonic in ("SIN", "COS", "EXP", "LOG", "RSQRT"):
            assert ulp_tolerance(op(mnemonic)) == 1

    def test_everything_else_is_bit_exact(self):
        for opcode in FP_OPCODES:
            if opcode.mnemonic not in ULP_TOLERANCE:
                assert ulp_tolerance(opcode) == 0

    def test_division_and_sqrt_are_bit_exact(self):
        # Double-then-round is provably correctly rounded for these (the
        # 53-bit intermediate exceeds the 2p+2 bits double rounding needs),
        # so the oracle holds them to zero ULPs.
        for mnemonic in ("RECIP", "RECIP_CLAMPED", "SQRT"):
            assert ulp_tolerance(op(mnemonic)) == 0


class TestReferenceSemantics:
    def test_max_ieee_nan_loses(self):
        assert reference_evaluate(op("MAX"), (math.nan, 3.0)) == 3.0
        assert reference_evaluate(op("MAX"), (3.0, math.nan)) == 3.0

    def test_max_prefers_positive_zero(self):
        result = reference_evaluate(op("MAX"), (-0.0, 0.0))
        assert float32_to_bits(result) == 0x00000000

    def test_min_prefers_negative_zero(self):
        result = reference_evaluate(op("MIN"), (0.0, -0.0))
        assert float32_to_bits(result) == 0x80000000

    def test_flt_to_int_saturates(self):
        assert reference_evaluate(op("FLT_TO_INT"), (1e10,)) == 2147483648.0
        assert reference_evaluate(op("FLT_TO_INT"), (-1e10,)) == -2147483648.0

    def test_flt_to_int_zero_has_no_sign(self):
        # The conversion produces an *integer* zero; -0.7 truncates to it.
        result = reference_evaluate(op("FLT_TO_INT"), (-0.7,))
        assert float32_to_bits(result) == 0x00000000

    def test_fma_rounds_once(self):
        a = float32(1.0000001)
        fused = reference_evaluate(op("MULADD"), (a, a, -1.0))
        assert fused == evaluate(op("MULADD"), (a, a, -1.0))

    def test_recip_clamped_subnormal_clamps(self):
        tiny = bits_to_float32(0x00000001)
        result = reference_evaluate(op("RECIP_CLAMPED"), (tiny,))
        assert math.isfinite(result)


class TestResultsEquivalent:
    def test_bitwise_equal_passes(self):
        assert results_equivalent(op("ADD"), 1.5, 1.5)

    def test_signed_zeros_differ(self):
        assert not results_equivalent(op("ADD"), 0.0, -0.0)

    def test_any_nan_equals_any_nan(self):
        payload = bits_to_float32(0x7FC00001)
        assert results_equivalent(op("ADD"), math.nan, payload)

    def test_one_ulp_fails_bit_exact_opcodes(self):
        nudged = bits_to_float32(float32_to_bits(1.0) + 1)
        assert not results_equivalent(op("ADD"), 1.0, nudged)

    def test_one_ulp_passes_transcendentals(self):
        nudged = bits_to_float32(float32_to_bits(1.0) + 1)
        assert results_equivalent(op("SIN"), 1.0, nudged)

    def test_two_ulps_fail_transcendentals(self):
        nudged = bits_to_float32(float32_to_bits(1.0) + 2)
        assert not results_equivalent(op("SIN"), 1.0, nudged)

    def test_infinity_vs_finite_fails_with_tolerance(self):
        # ULP distance is undefined for infinities; the tolerance branch
        # must not be taken, and the pair must simply fail.
        assert not results_equivalent(op("SIN"), math.inf, 1.0)
