"""Tests for the metamorphic invariant suite.

The positive direction (everything green on the real simulator) is
covered by ``repro verify`` itself; the load-bearing tests here are the
*negative* ones, which reintroduce the historical arithmetic bugs and
assert the invariants actually catch them.
"""

import math

import pytest

from repro.fpu import arithmetic
from repro.oracle.corpus import CorpusConfig
from repro.oracle.invariants import (
    Divergence,
    check_commutativity,
    check_isa_consistency,
    check_memo_transparency,
    check_reference_agreement,
    check_threshold_bound,
)

FAST = CorpusConfig(seed=0, fuzz_cases=16)


class TestReferenceAgreement:
    def test_clean_simulator_has_no_divergences(self):
        result = check_reference_agreement(FAST)
        assert result.ok
        assert result.cases > 15000

    def test_catches_unsaturated_flt_to_int(self, monkeypatch):
        # The pre-fix conversion: truncate without clamping to int32.
        monkeypatch.setitem(
            arithmetic._UNARY,
            "FLT_TO_INT",
            lambda a: 0.0 if math.isnan(a) else float(math.trunc(a))
            if math.isfinite(a)
            else a,
        )
        result = check_reference_agreement(FAST)
        assert any(d.opcode == "FLT_TO_INT" for d in result.divergences)

    def test_catches_signed_zero_floor_bug(self, monkeypatch):
        # The pre-fix FLOOR: Python's int-returning floor loses -0.0.
        monkeypatch.setitem(
            arithmetic._UNARY,
            "FLOOR",
            lambda a: float(math.floor(a)) if math.isfinite(a) else a,
        )
        result = check_reference_agreement(FAST)
        assert any(d.opcode == "FLOOR" for d in result.divergences)


class TestCommutativity:
    def test_clean_simulator_is_commutative(self):
        result = check_commutativity(FAST)
        assert result.ok

    def test_catches_reintroduced_python_max(self, monkeypatch):
        # The original bug this PR fixes: Python's max() returns its
        # first argument for NaN and is order dependent for +/-0.0, so a
        # COMMUTED memo hit would change the result bits.
        monkeypatch.setitem(arithmetic._BINARY, "MAX", lambda a, b: max(a, b))
        result = check_commutativity(FAST)
        assert not result.ok
        assert any(d.opcode == "MAX" for d in result.divergences)

    def test_catches_order_dependent_min(self, monkeypatch):
        monkeypatch.setitem(arithmetic._BINARY, "MIN", lambda a, b: min(a, b))
        result = check_commutativity(FAST)
        assert any(d.opcode == "MIN" for d in result.divergences)

    def test_only_declared_commutative_opcodes_swept(self):
        result = check_commutativity(FAST)
        # SUB/SETGT etc. are not commutative and must not contribute.
        mnemonics = {d.opcode for d in result.divergences}
        assert "SUB" not in mnemonics


class TestIsaConsistency:
    def test_interpreter_matches_direct_evaluate(self):
        result = check_isa_consistency(FAST, samples_per_opcode=8)
        assert result.ok
        assert result.cases == 27 * 8


class TestMemoTransparency:
    def test_exact_memo_is_bit_transparent(self):
        result = check_memo_transparency(["Sobel"], error_rates=(0.0,))
        assert result.ok
        assert result.cases == 1

    def test_sweeps_kernel_by_error_rate_grid(self):
        result = check_memo_transparency(
            ["FWT", "Haar"], error_rates=(0.0, 0.02)
        )
        assert result.cases == 4


class TestThresholdBound:
    def test_approximate_hits_stay_in_envelope(self):
        result = check_threshold_bound(thresholds=(0.25,))
        assert result.ok
        assert result.cases > 0

    def test_nan_rule_is_checked(self):
        # The NaN sub-check contributes one case per opcode/threshold on
        # top of the perturbation grid.
        grid = check_threshold_bound(thresholds=(0.25, 0.5))
        assert grid.cases > check_threshold_bound(thresholds=(0.25,)).cases


class TestDivergenceRecord:
    def test_to_dict_carries_bit_patterns(self):
        d = Divergence(
            invariant="reference",
            opcode="ADD",
            detail="example",
            operands=(1.0, -0.0),
            ours=math.inf,
            expected=math.nan,
        )
        doc = d.to_dict()
        assert doc["operand_bits"] == ["0x3F800000", "0x80000000"]
        assert doc["ours"] == "inf"  # JSON-safe spelling
        assert doc["expected"] == "nan"

    def test_str_is_replayable(self):
        d = Divergence(
            invariant="commutativity",
            opcode="MAX",
            detail="swap changed result",
            operands=(math.nan, 1.0),
        )
        text = str(d)
        assert "[commutativity]" in text and "MAX" in text
        assert "0x" in text  # operand bit patterns present


@pytest.fixture(autouse=True)
def _no_lingering_patch():
    """Monkeypatched tables must be restored (sanity for other tests)."""
    yield
    assert arithmetic._BINARY["MAX"] is arithmetic._max_ieee
