"""Tests for the verification runner and its report artifact."""

import json

from repro.fpu import arithmetic
from repro.oracle.runner import (
    MAX_REPORTED_DIVERGENCES,
    VerificationConfig,
    VerificationReport,
    run_and_report,
    run_verification,
)
from repro.telemetry.registry import MetricsRegistry

QUICK = VerificationConfig(fuzz_cases=16, include_kernels=False)


class TestRunVerification:
    def test_clean_tree_verifies(self):
        report = run_verification(QUICK)
        assert report.ok
        assert report.total_divergences == 0
        assert report.opcode_count == 27
        assert {r.name for r in report.results} == {
            "reference",
            "commutativity",
            "isa_consistency",
            "threshold_bound",
        }

    def test_kernel_sweep_included_by_default_config(self):
        config = VerificationConfig(
            fuzz_cases=0, kernels=("FWT",), error_rates=(0.0,)
        )
        report = run_verification(config)
        assert report.kernels == ("FWT",)
        assert any(r.name == "memo_transparency" for r in report.results)

    def test_counters_flow_into_registry(self):
        registry = MetricsRegistry()
        report = run_verification(QUICK, registry=registry)
        snapshot = registry.snapshot().to_dict()
        assert snapshot["counters"]["oracle.cases"] == report.total_cases
        assert snapshot["counters"]["oracle.divergences"] == 0
        assert (
            snapshot["counters"]["oracle.invariant.reference.cases"]
            == report.results[0].cases
        )

    def test_divergences_fail_the_report(self, monkeypatch):
        monkeypatch.setitem(arithmetic._BINARY, "MAX", lambda a, b: max(a, b))
        report = run_verification(QUICK)
        assert not report.ok
        assert report.total_divergences > 0


class TestReportArtifact:
    def test_json_artifact_round_trips(self, tmp_path):
        path = tmp_path / "divergences.json"
        report = run_and_report(QUICK, json_path=str(path))
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        assert doc["seed"] == 0
        assert doc["total_cases"] == report.total_cases
        assert [i["name"] for i in doc["invariants"]] == [
            r.name for r in report.results
        ]

    def test_artifact_caps_embedded_divergences(self, monkeypatch, tmp_path):
        monkeypatch.setitem(arithmetic._BINARY, "MAX", lambda a, b: max(a, b))
        path = tmp_path / "divergences.json"
        report = run_and_report(QUICK, json_path=str(path))
        doc = json.loads(path.read_text())
        assert doc["ok"] is False
        for entry in doc["invariants"]:
            assert len(entry["divergences"]) <= MAX_REPORTED_DIVERGENCES
            # The true total is never silently truncated.
            assert entry["divergence_count"] >= len(entry["divergences"])
        assert doc["total_divergences"] == report.total_divergences

    def test_divergence_records_are_replayable(self, monkeypatch):
        monkeypatch.setitem(arithmetic._BINARY, "MAX", lambda a, b: max(a, b))
        report = run_verification(QUICK)
        record = report.divergences()[0].to_dict()
        assert record["opcode"] == "MAX"
        assert all(bits.startswith("0x") for bits in record["operand_bits"])


class TestReportText:
    def test_green_table_lists_every_invariant(self):
        report = run_verification(QUICK)
        text = report.to_text()
        assert "reference" in text and "threshold_bound" in text
        assert "FAIL" not in text

    def test_failing_table_prints_divergences(self, monkeypatch):
        monkeypatch.setitem(arithmetic._BINARY, "MAX", lambda a, b: max(a, b))
        report = run_verification(QUICK)
        text = report.to_text(max_divergences=3)
        assert "FAIL" in text
        assert "[commutativity]" in text or "[reference]" in text
        if report.total_divergences > 3:
            assert "more" in text


class TestVerificationReportShape:
    def test_empty_report_is_ok(self):
        report = VerificationReport(seed=0)
        assert report.ok
        assert report.total_cases == 0


class TestBackendEquivalence:
    def test_only_backends_runs_just_the_backend_sweep(self):
        config = VerificationConfig(
            fuzz_cases=0,
            kernels=("FWT",),
            error_rates=(0.0,),
            only_backends=True,
        )
        report = run_verification(config)
        assert report.ok, report.to_text()
        assert [r.name for r in report.results] == ["backend_equivalence"]
        assert report.results[0].cases > 0

    def test_backend_sweep_included_in_full_run(self):
        config = VerificationConfig(
            fuzz_cases=0, kernels=("FWT",), error_rates=(0.0,)
        )
        report = run_verification(config)
        names = {r.name for r in report.results}
        assert "backend_equivalence" in names
        assert "memo_transparency" in names

    def test_include_backends_false_skips_the_sweep(self):
        config = VerificationConfig(
            fuzz_cases=0,
            kernels=("FWT",),
            error_rates=(0.0,),
            include_backends=False,
        )
        report = run_verification(config)
        assert all(r.name != "backend_equivalence" for r in report.results)
