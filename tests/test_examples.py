"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; each is run in-process with
small arguments and its output sanity-checked.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(capsys, monkeypatch, script: str, *argv: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *argv])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch, tmp_path):
        out = run_example(
            capsys,
            monkeypatch,
            "quickstart.py",
            "--size", "24",
            "--out-dir", str(tmp_path / "out"),
        )
        assert "hit rates" in out.lower()
        assert "Total energy saving" in out
        assert (tmp_path / "out" / "sobel_memoized.pgm").exists()

    def test_image_pipeline(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "image_pipeline.py", "--size", "24")
        assert "selected threshold" in out
        assert "Sobel / face" in out and "Gaussian / book" in out

    def test_finance_resilience(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "finance_resilience.py", "--options", "32"
        )
        assert "BlackScholes" in out and "BinomialOption" in out
        assert "FAIL" not in out  # every host check must pass

    def test_voltage_overscaling(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "voltage_overscaling.py", "--kernel", "FWT"
        )
        assert "Minimum-energy operating point" in out
        assert "memoized" in out

    def test_isa_program(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "isa_program.py", "--items", "64"
        )
        assert "Assembled program" in out
        assert "hit rate" in out
        assert "Timing errors" in out

    def test_custom_kernel_quantized(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "custom_kernel.py", "--items", "128"
        )
        assert "Deployment decision" in out
        assert "keep the module ON" in out

    def test_custom_kernel_continuous(self, capsys, monkeypatch):
        out = run_example(
            capsys,
            monkeypatch,
            "custom_kernel.py",
            "--items", "128",
            "--continuous",
        )
        assert "Deployment decision" in out
        # Continuous inputs lack locality: the module should be gated.
        assert "POWER-GATE" in out
