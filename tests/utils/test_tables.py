"""Tests for ASCII table/series rendering."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "|" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title_prepended(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]], float_format=".2f")
        assert "3.14" in text
        assert "3.14159" not in text

    def test_none_renders_as_dash(self):
        text = format_table(["v"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_infinity_renders(self):
        text = format_table(["v"], [[float("inf")]])
        assert "inf" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_integers_not_float_formatted(self):
        text = format_table(["v"], [[10]], float_format=".2f")
        assert "10" in text
        assert "10.00" not in text


class TestFormatSeries:
    def test_headers_are_series_names(self):
        text = format_series("x", [1, 2], {"y1": [3, 4], "y2": [5, 6]})
        header = text.splitlines()[0]
        assert "x" in header and "y1" in header and "y2" in header

    def test_values_aligned_to_x(self):
        text = format_series("x", [1, 2], {"y": [10, 20]})
        rows = text.splitlines()[2:]
        assert "1" in rows[0] and "10" in rows[0]
        assert "2" in rows[1] and "20" in rows[1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1]})
