"""Tests for deterministic RNG streams."""

import pytest

from repro.utils.rng import RngStream, split_seed


class TestSplitSeed:
    def test_deterministic(self):
        assert split_seed(42, "a", 1) == split_seed(42, "a", 1)

    def test_distinct_labels_give_distinct_seeds(self):
        assert split_seed(42, "a") != split_seed(42, "b")

    def test_distinct_masters_give_distinct_seeds(self):
        assert split_seed(1, "a") != split_seed(2, "a")

    def test_label_order_matters(self):
        assert split_seed(42, "a", "b") != split_seed(42, "b", "a")

    def test_fits_in_64_bits(self):
        assert 0 <= split_seed(7, "x") < (1 << 64)


class TestRngStream:
    def test_same_labels_same_sequence(self):
        a = RngStream(1, "errors", 0)
        b = RngStream(1, "errors", 0)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_labels_different_sequence(self):
        a = RngStream(1, "errors", 0)
        b = RngStream(1, "errors", 1)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_child_is_independent_of_parent_state(self):
        parent = RngStream(1, "p")
        child_before = parent.child("c")
        _ = [parent.uniform() for _ in range(10)]
        child_after = parent.child("c")
        assert child_before.uniform() == child_after.uniform()

    def test_uniform_range(self):
        stream = RngStream(3)
        for _ in range(100):
            value = stream.uniform(2.0, 5.0)
            assert 2.0 <= value < 5.0

    def test_bernoulli_zero_never_fires(self):
        stream = RngStream(4)
        assert not any(stream.bernoulli(0.0) for _ in range(100))

    def test_bernoulli_one_always_fires(self):
        stream = RngStream(4)
        assert all(stream.bernoulli(1.0) for _ in range(100))

    def test_bernoulli_rate_roughly_respected(self):
        stream = RngStream(5)
        hits = sum(stream.bernoulli(0.3) for _ in range(10000))
        assert 2500 < hits < 3500

    def test_bernoulli_rejects_invalid_probability(self):
        stream = RngStream(6)
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)
        with pytest.raises(ValueError):
            stream.bernoulli(-0.1)

    def test_integers_half_open(self):
        stream = RngStream(7)
        values = {stream.integers(0, 3) for _ in range(200)}
        assert values == {0, 1, 2}

    def test_array_uniform_shape(self):
        stream = RngStream(8)
        arr = stream.array_uniform((3, 4))
        assert arr.shape == (3, 4)

    def test_array_normal_statistics(self):
        stream = RngStream(9)
        arr = stream.array_normal(10000, mean=2.0, std=0.5)
        assert abs(float(arr.mean()) - 2.0) < 0.05
