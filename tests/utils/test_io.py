"""Tests for the atomic-write helpers."""

import json
import os

import pytest

from repro.utils.io import atomic_write_json, atomic_write_text, atomic_writer


class TestAtomicWriter:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(str(target)) as handle:
            handle.write("hello\n")
        assert target.read_text() == "hello\n"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(str(target)) as handle:
            handle.write("x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_writer(str(target)) as handle:
            handle.write("new")
        assert target.read_text() == "new"

    def test_exception_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_writer(str(target)) as handle:
                handle.write("partial garbage")
                raise RuntimeError("boom")
        assert target.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_exception_with_no_prior_file_creates_nothing(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(str(target)):
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == []

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        with atomic_writer(str(target)) as handle:
            handle.write("deep")
        assert target.read_text() == "deep"

    def test_newline_forwarded(self, tmp_path):
        target = tmp_path / "out.csv"
        with atomic_writer(str(target), newline="") as handle:
            handle.write("a\r\n")
        assert target.read_bytes() == b"a\r\n"


class TestConvenienceWrappers:
    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "t.txt"
        atomic_write_text(str(target), "body")
        assert target.read_text() == "body"

    def test_atomic_write_json_round_trips(self, tmp_path):
        target = tmp_path / "d.json"
        atomic_write_json(str(target), {"b": 1, "a": [1.5, None]})
        assert json.loads(target.read_text()) == {"b": 1, "a": [1.5, None]}

    def test_atomic_write_json_ends_with_newline(self, tmp_path):
        target = tmp_path / "d.json"
        atomic_write_json(str(target), {})
        assert target.read_text().endswith("\n")

    def test_atomic_write_json_sort_keys(self, tmp_path):
        target = tmp_path / "d.json"
        atomic_write_json(str(target), {"b": 1, "a": 2}, sort_keys=True)
        text = target.read_text()
        assert text.index('"a"') < text.index('"b"')
