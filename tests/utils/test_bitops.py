"""Tests for float32 bit-level helpers."""

import math

import pytest

from repro.utils.bitops import (
    FRACTION_BITS,
    bits_to_float32,
    float32_to_bits,
    fraction_mask_vector,
    masked_equal,
    quantize_to_mask,
    ulp_distance,
)


class TestBitConversion:
    def test_one_round_trips(self):
        assert bits_to_float32(float32_to_bits(1.0)) == 1.0

    def test_known_pattern_for_one(self):
        assert float32_to_bits(1.0) == 0x3F800000

    def test_known_pattern_for_minus_two(self):
        assert float32_to_bits(-2.0) == 0xC0000000

    def test_zero_is_all_zero_bits(self):
        assert float32_to_bits(0.0) == 0

    def test_negative_zero_has_sign_bit(self):
        assert float32_to_bits(-0.0) == 0x8000_0000

    def test_double_rounds_to_single(self):
        # 0.1 is not single-representable; conversion must round.
        bits = float32_to_bits(0.1)
        assert bits_to_float32(bits) != 0.1
        assert abs(bits_to_float32(bits) - 0.1) < 1e-8

    def test_infinity_pattern(self):
        assert float32_to_bits(math.inf) == 0x7F800000

    def test_nan_round_trips_as_nan(self):
        assert math.isnan(bits_to_float32(float32_to_bits(math.nan)))

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bits_to_float32(1 << 32)
        with pytest.raises(ValueError):
            bits_to_float32(-1)


class TestMaskVector:
    def test_zero_masked_bits_is_full_compare(self):
        assert fraction_mask_vector(0) == 0xFFFF_FFFF

    def test_masking_all_fraction_bits(self):
        vector = fraction_mask_vector(FRACTION_BITS)
        # Sign and exponent still compared.
        assert vector == 0xFF80_0000

    def test_mask_vector_rejects_negative(self):
        with pytest.raises(ValueError):
            fraction_mask_vector(-1)

    def test_mask_vector_rejects_too_many_bits(self):
        with pytest.raises(ValueError):
            fraction_mask_vector(FRACTION_BITS + 1)

    def test_masked_equal_ignores_low_bits(self):
        vector = fraction_mask_vector(10)
        a = 1.0
        b = bits_to_float32(float32_to_bits(1.0) | 0x3FF)  # tweak low 10 bits
        assert masked_equal(a, b, vector)

    def test_masked_equal_detects_high_bit_difference(self):
        vector = fraction_mask_vector(10)
        assert not masked_equal(1.0, 2.0, vector)

    def test_full_mask_is_exact_equality(self):
        vector = fraction_mask_vector(0)
        assert masked_equal(1.5, 1.5, vector)
        nudged = bits_to_float32(float32_to_bits(1.5) + 1)
        assert not masked_equal(1.5, nudged, vector)

    def test_quantize_zeroes_ignored_bits(self):
        vector = fraction_mask_vector(8)
        value = bits_to_float32(float32_to_bits(3.14159) | 0xFF)
        quantized = quantize_to_mask(value, vector)
        assert float32_to_bits(quantized) & 0xFF == 0

    def test_quantize_is_idempotent(self):
        vector = fraction_mask_vector(12)
        once = quantize_to_mask(2.71828, vector)
        assert quantize_to_mask(once, vector) == once


class TestUlpDistance:
    def test_identical_values(self):
        assert ulp_distance(1.0, 1.0) == 0

    def test_adjacent_values(self):
        nxt = bits_to_float32(float32_to_bits(1.0) + 1)
        assert ulp_distance(1.0, nxt) == 1

    def test_symmetry(self):
        assert ulp_distance(1.0, 2.0) == ulp_distance(2.0, 1.0)

    def test_across_zero(self):
        tiny = bits_to_float32(1)  # smallest positive subnormal
        assert ulp_distance(-tiny, tiny) == 2

    def test_zero_boundary(self):
        assert ulp_distance(0.0, -0.0) == 0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ulp_distance(math.nan, 1.0)

    def test_infinity_rejected(self):
        # There is no meaningful ULP count to or between infinities;
        # like NaN, they are a usage error, not a huge distance.
        with pytest.raises(ValueError):
            ulp_distance(math.inf, 1.0)
        with pytest.raises(ValueError):
            ulp_distance(1.0, -math.inf)
        with pytest.raises(ValueError):
            ulp_distance(math.inf, math.inf)
