"""Tests for the cycle-level FPU pipeline model."""

import pytest

from repro.errors import PipelineError
from repro.fpu.base import FpuPipeline
from repro.isa.opcodes import opcode_by_mnemonic

ADD = opcode_by_mnemonic("ADD")
MUL = opcode_by_mnemonic("MUL")


@pytest.fixture
def pipe():
    return FpuPipeline("ADD", stages=4)


class TestIssueAndCompletion:
    def test_latency_is_pipeline_depth(self, pipe):
        pipe.issue(ADD, (1.0, 2.0))
        results = [pipe.tick() for _ in range(4)]
        assert results[:3] == [None, None, None]
        assert results[3] is not None
        assert results[3].result == 3.0

    def test_throughput_one_per_cycle(self, pipe):
        completed = []
        for i in range(8):
            pipe.issue(ADD, (float(i), 1.0))
            done = pipe.tick()
            if done:
                completed.append(done.result)
        completed.extend(c.result for c in pipe.drain())
        assert completed == [float(i) + 1.0 for i in range(8)]

    def test_double_issue_without_tick_rejected(self, pipe):
        pipe.issue(ADD, (1.0, 2.0))
        with pytest.raises(PipelineError):
            pipe.issue(ADD, (3.0, 4.0))

    def test_occupancy_tracks_in_flight(self, pipe):
        pipe.issue(ADD, (1.0, 2.0))
        assert pipe.occupancy == 1
        pipe.tick()
        pipe.issue(MUL, (1.0, 2.0))
        assert pipe.occupancy == 2

    def test_drain_empties_pipeline(self, pipe):
        pipe.issue(ADD, (1.0, 1.0))
        pipe.tick()
        pipe.issue(ADD, (2.0, 2.0))
        done = pipe.drain()
        assert len(done) == 2
        assert pipe.occupancy == 0

    def test_single_stage_pipeline(self):
        pipe = FpuPipeline("X", stages=1)
        pipe.issue(ADD, (1.0, 2.0))
        done = pipe.tick()
        assert done is not None and done.result == 3.0

    def test_zero_stage_rejected(self):
        with pytest.raises(PipelineError):
            FpuPipeline("X", stages=0)


class TestSquash:
    def test_squash_returns_reuse_value(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.squash(op_id, reuse_value=99.0)
        done = pipe.drain()[0]
        assert done.squashed
        assert done.result == 99.0

    def test_squash_only_in_stage_zero(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.tick()  # now in stage 1
        with pytest.raises(PipelineError):
            pipe.squash(op_id, reuse_value=0.0)

    def test_squashed_stages_counted_as_gated(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.squash(op_id, reuse_value=3.0)
        pipe.drain()
        # Stage 0 active (LUT in parallel with stage 1), stages 1-3 gated.
        assert pipe.stats.active_stage_cycles == 1
        assert pipe.stats.gated_stage_cycles == 3

    def test_unsquashed_all_stages_active(self, pipe):
        pipe.issue(ADD, (1.0, 2.0))
        pipe.drain()
        assert pipe.stats.active_stage_cycles == 4
        assert pipe.stats.gated_stage_cycles == 0

    def test_squash_masks_timing_error(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.flag_timing_error(op_id, stage=2)
        pipe.squash(op_id, reuse_value=3.0)
        done = pipe.drain()[0]
        assert not done.timing_error  # hit masks the error signal

    def test_unknown_op_id_rejected(self, pipe):
        with pytest.raises(PipelineError):
            pipe.squash(12345, reuse_value=0.0)


class TestTimingErrors:
    def test_error_reported_at_completion(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.flag_timing_error(op_id, stage=1)
        done = pipe.drain()[0]
        assert done.timing_error

    def test_earliest_stage_retained(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.flag_timing_error(op_id, stage=3)
        pipe.flag_timing_error(op_id, stage=1)
        # No public accessor for error stage; the op must still err.
        assert pipe.drain()[0].timing_error

    def test_stage_out_of_range_rejected(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        with pytest.raises(PipelineError):
            pipe.flag_timing_error(op_id, stage=7)

    def test_retired_op_cannot_be_flagged(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        pipe.drain()
        with pytest.raises(PipelineError):
            pipe.flag_timing_error(op_id, stage=0)


class TestStats:
    def test_bubble_cycles_counted(self, pipe):
        pipe.issue(ADD, (1.0, 2.0))
        pipe.drain()
        # 4 ticks x 4 slots = 16 slot-cycles; 4 active, 12 bubbles.
        assert pipe.stats.bubble_stage_cycles == 12
        assert pipe.stats.total_stage_cycles == 16

    def test_issue_and_completion_counts(self, pipe):
        for _ in range(3):
            pipe.issue(ADD, (1.0, 1.0))
            pipe.tick()
        pipe.drain()
        assert pipe.stats.issued == 3
        assert pipe.stats.completed == 3

    def test_stage_of_reports_position(self, pipe):
        op_id = pipe.issue(ADD, (1.0, 2.0))
        assert pipe.stage_of(op_id) == 0
        pipe.tick()
        assert pipe.stage_of(op_id) == 1
