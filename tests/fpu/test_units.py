"""Tests for unit specs and the FPU pool."""

import pytest

from repro.config import ArchConfig
from repro.errors import ConfigError, PipelineError
from repro.fpu.pool import FpuPool
from repro.fpu.units import UNIT_SPECS, UnitSpec, pipeline_stages_for
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic


class TestUnitSpecs:
    def test_every_unit_kind_specified(self):
        assert set(UNIT_SPECS) == set(UnitKind)

    def test_recip_is_deepest(self):
        recip = UNIT_SPECS[UnitKind.RECIP]
        assert recip.pipeline_stages == 16
        for kind, spec in UNIT_SPECS.items():
            if kind is not UnitKind.RECIP:
                assert spec.pipeline_stages == 4

    def test_throughput_one_per_cycle(self):
        for spec in UNIT_SPECS.values():
            assert spec.issue_interval_cycles == 1

    def test_energy_ordering_matches_complexity(self):
        e = {kind: spec.energy_per_op_pj for kind, spec in UNIT_SPECS.items()}
        assert e[UnitKind.FP2INT] < e[UnitKind.ADD] < e[UnitKind.MUL]
        assert e[UnitKind.MUL] < e[UnitKind.MULADD] < e[UnitKind.SQRT]
        assert e[UnitKind.SQRT] < e[UnitKind.RECIP]

    def test_energy_per_stage(self):
        spec = UNIT_SPECS[UnitKind.ADD]
        assert spec.energy_per_stage_pj == pytest.approx(
            spec.energy_per_op_pj / spec.pipeline_stages
        )

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            UnitSpec(UnitKind.ADD, 0, 1, 1.0, 1.0)
        with pytest.raises(ConfigError):
            UnitSpec(UnitKind.ADD, 4, 1, -1.0, 1.0)

    def test_stages_follow_arch_config(self):
        arch = ArchConfig(fpu_pipeline_stages=6, recip_pipeline_stages=20)
        assert pipeline_stages_for(UnitKind.ADD, arch) == 6
        assert pipeline_stages_for(UnitKind.RECIP, arch) == 20


class TestFpuPool:
    def test_routes_by_unit_kind(self):
        pool = FpuPool()
        add = opcode_by_mnemonic("ADD")
        sqrt = opcode_by_mnemonic("SQRT")
        pool.issue(add, (1.0, 2.0))
        pool.issue(sqrt, (4.0,))  # different unit: no structural hazard
        assert pool.occupancy == 2

    def test_same_unit_conflicts(self):
        pool = FpuPool()
        add = opcode_by_mnemonic("ADD")
        sub = opcode_by_mnemonic("SUB")  # also on the ADD unit
        pool.issue(add, (1.0, 2.0))
        with pytest.raises(PipelineError):
            pool.issue(sub, (1.0, 2.0))

    def test_tick_advances_all_units(self):
        pool = FpuPool()
        add = opcode_by_mnemonic("ADD")
        mul = opcode_by_mnemonic("MUL")
        pool.issue(add, (1.0, 2.0))
        pool.issue(mul, (3.0, 4.0))
        completions = []
        for _ in range(4):
            completions.extend(pool.tick())
        assert sorted(c.result for c in completions) == [3.0, 12.0]

    def test_recip_takes_longer(self):
        pool = FpuPool()
        recip = opcode_by_mnemonic("RECIP")
        add = opcode_by_mnemonic("ADD")
        pool.issue(recip, (2.0,))
        pool.issue(add, (1.0, 1.0))
        done_at = {}
        for cycle in range(1, 20):
            for completion in pool.tick():
                done_at[completion.opcode.mnemonic] = cycle
        assert done_at["ADD"] == 4
        assert done_at["RECIP"] == 16

    def test_drain(self):
        pool = FpuPool()
        pool.issue(opcode_by_mnemonic("RECIP"), (4.0,))
        done = pool.drain()
        assert len(done) == 1
        assert done[0].result == 0.25
        assert pool.occupancy == 0

    def test_stats_per_unit(self):
        pool = FpuPool()
        pool.issue(opcode_by_mnemonic("ADD"), (1.0, 1.0))
        pool.drain()
        stats = pool.stats()
        assert stats[UnitKind.ADD].completed == 1
        assert stats[UnitKind.MUL].completed == 0
