"""Tests for bit-exact float32 operator semantics."""

import math
import struct

import numpy as np
import pytest

from repro.errors import IsaError
from repro.fpu.arithmetic import FLOAT32_MAX, evaluate, float32
from repro.isa.opcodes import FP_OPCODES, opcode_by_mnemonic
from repro.utils.bitops import bits_to_float32, float32_to_bits


def op(mnemonic):
    return opcode_by_mnemonic(mnemonic)


def bits(value):
    return float32_to_bits(value)


class TestFloat32Rounding:
    def test_exact_values_unchanged(self):
        assert float32(1.5) == 1.5

    def test_inexact_double_rounds(self):
        assert float32(0.1) == struct.unpack("<f", struct.pack("<f", 0.1))[0]

    def test_overflow_to_infinity(self):
        assert float32(1e39) == math.inf

    def test_matches_numpy_float32(self):
        for value in (0.1, math.pi, 1e-40, 123456.789):
            assert float32(value) == float(np.float32(value))


class TestBinaryOps:
    def test_add_matches_numpy(self):
        a, b = float32(0.1), float32(0.2)
        assert evaluate(op("ADD"), (a, b)) == float(np.float32(a) + np.float32(b))

    def test_sub(self):
        assert evaluate(op("SUB"), (5.0, 3.0)) == 2.0

    def test_mul_matches_numpy(self):
        a, b = float32(1.1), float32(2.3)
        assert evaluate(op("MUL"), (a, b)) == float(np.float32(a) * np.float32(b))

    def test_max_min(self):
        assert evaluate(op("MAX"), (1.0, 2.0)) == 2.0
        assert evaluate(op("MIN"), (1.0, 2.0)) == 1.0

    @pytest.mark.parametrize(
        "mnemonic,a,b,expected",
        [
            ("SETE", 1.0, 1.0, 1.0),
            ("SETE", 1.0, 2.0, 0.0),
            ("SETNE", 1.0, 2.0, 1.0),
            ("SETGT", 2.0, 1.0, 1.0),
            ("SETGT", 1.0, 1.0, 0.0),
            ("SETGE", 1.0, 1.0, 1.0),
            ("SETGE", 0.0, 1.0, 0.0),
        ],
    )
    def test_comparisons(self, mnemonic, a, b, expected):
        assert evaluate(op(mnemonic), (a, b)) == expected


class TestMaxMinIeee:
    """MAX/MIN follow IEEE-754 maxNum/minNum, making them genuinely
    commutative (a COMMUTED memo hit must be transparent)."""

    @pytest.mark.parametrize("mnemonic", ["MAX", "MIN"])
    def test_nan_operand_loses(self, mnemonic):
        assert evaluate(op(mnemonic), (math.nan, 3.0)) == 3.0
        assert evaluate(op(mnemonic), (3.0, math.nan)) == 3.0

    @pytest.mark.parametrize("mnemonic", ["MAX", "MIN"])
    def test_both_nan_is_nan(self, mnemonic):
        assert math.isnan(evaluate(op(mnemonic), (math.nan, math.nan)))

    def test_max_of_signed_zeros_is_positive(self):
        assert bits(evaluate(op("MAX"), (-0.0, 0.0))) == 0x00000000
        assert bits(evaluate(op("MAX"), (0.0, -0.0))) == 0x00000000

    def test_min_of_signed_zeros_is_negative(self):
        assert bits(evaluate(op("MIN"), (-0.0, 0.0))) == 0x80000000
        assert bits(evaluate(op("MIN"), (0.0, -0.0))) == 0x80000000

    def test_infinities_order_normally(self):
        assert evaluate(op("MAX"), (-math.inf, 1.0)) == 1.0
        assert evaluate(op("MIN"), (math.inf, 1.0)) == 1.0


class TestCommutativityBitwise:
    """Every opcode declared commutative must be *value*-commutative
    (bitwise) over the adversarial corpus, or COMMUTED memoization hits
    would silently change result bits."""

    @pytest.mark.parametrize(
        "opcode",
        [o for o in FP_OPCODES if o.commutative],
        ids=lambda o: o.mnemonic,
    )
    def test_swapped_operands_bit_identical(self, opcode):
        from repro.oracle.corpus import CorpusConfig, operand_corpus

        i, j = opcode.commutative_operands
        for operands in operand_corpus(opcode, CorpusConfig(fuzz_cases=64)):
            swapped = list(operands)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            direct = evaluate(opcode, operands)
            commuted = evaluate(opcode, tuple(swapped))
            if math.isnan(direct) and math.isnan(commuted):
                continue
            assert bits(direct) == bits(commuted), (
                f"{opcode.mnemonic}{operands} is not value-commutative"
            )


class TestTernaryOps:
    def test_muladd_is_fused(self):
        # A fused multiply-add rounds once; with these operands the fused
        # and unfused results differ in the last bit.
        a = float32(1.0000001)
        result = evaluate(op("MULADD"), (a, a, -1.0))
        unfused = float32(float32(a * a) + -1.0)
        fused = float32(a * a - 1.0)
        assert result == fused
        assert result != unfused or fused == unfused

    def test_mulsub(self):
        assert evaluate(op("MULSUB"), (3.0, 4.0, 2.0)) == 10.0


class TestUnaryOps:
    def test_sqrt(self):
        assert evaluate(op("SQRT"), (16.0,)) == 4.0

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(evaluate(op("SQRT"), (-1.0,)))

    def test_rsqrt(self):
        assert evaluate(op("RSQRT"), (4.0,)) == 0.5

    def test_rsqrt_zero_is_inf(self):
        assert evaluate(op("RSQRT"), (0.0,)) == math.inf

    def test_recip(self):
        assert evaluate(op("RECIP"), (4.0,)) == 0.25

    def test_recip_zero_signed_infinity(self):
        assert evaluate(op("RECIP"), (0.0,)) == math.inf
        assert evaluate(op("RECIP"), (-0.0,)) == -math.inf

    def test_recip_clamped_zero(self):
        assert evaluate(op("RECIP_CLAMPED"), (0.0,)) == pytest.approx(
            float32(FLOAT32_MAX)
        )

    def test_floor_fract(self):
        assert evaluate(op("FLOOR"), (2.75,)) == 2.0
        assert evaluate(op("FRACT"), (2.75,)) == 0.75

    def test_floor_negative(self):
        assert evaluate(op("FLOOR"), (-1.5,)) == -2.0

    def test_trunc(self):
        assert evaluate(op("TRUNC"), (-1.5,)) == -1.0
        assert evaluate(op("TRUNC"), (1.9,)) == 1.0

    @pytest.mark.parametrize(
        "value,expected",
        [(2.5, 2.0), (3.5, 4.0), (2.4, 2.0), (2.6, 3.0), (-2.5, -2.0)],
    )
    def test_rndne_round_half_even(self, value, expected):
        assert evaluate(op("RNDNE"), (value,)) == expected

    def test_flt_to_int_truncates(self):
        assert evaluate(op("FLT_TO_INT"), (3.9,)) == 3.0
        assert evaluate(op("FLT_TO_INT"), (-3.9,)) == -3.0

    def test_flt_to_int_saturates_large_finite_values(self):
        # Finite values beyond int32 range clamp to the saturation
        # bounds, exactly like infinities (this was truncate-only once).
        assert evaluate(op("FLT_TO_INT"), (1e10,)) == 2147483648.0
        assert evaluate(op("FLT_TO_INT"), (-1e10,)) == -2147483648.0
        largest = bits_to_float32(0x7F7FFFFF)
        assert evaluate(op("FLT_TO_INT"), (largest,)) == 2147483648.0

    def test_flt_to_int_boundary_values(self):
        # 2147483520.0 is the largest single below 2^31: in range, passes.
        below = bits_to_float32(0x4EFFFFFF)
        assert evaluate(op("FLT_TO_INT"), (below,)) == below
        # INT32_MIN is exactly representable and in range.
        assert evaluate(op("FLT_TO_INT"), (-2147483648.0,)) == -2147483648.0
        # One ULP past the positive bound saturates.
        above = bits_to_float32(0x4F000001)
        assert evaluate(op("FLT_TO_INT"), (above,)) == 2147483648.0

    def test_recip_clamped_subnormal_input_clamps(self):
        # 1/2^-149 is finite in double but overflows single precision;
        # the clamp must catch the post-rounding infinity.
        tiny = bits_to_float32(0x00000001)
        assert evaluate(op("RECIP_CLAMPED"), (tiny,)) == float32(FLOAT32_MAX)
        assert evaluate(op("RECIP_CLAMPED"), (-tiny,)) == -float32(FLOAT32_MAX)

    @pytest.mark.parametrize(
        "mnemonic,value,expected_bits",
        [
            ("FLOOR", -0.0, 0x80000000),
            ("TRUNC", -0.0, 0x80000000),
            ("TRUNC", -0.7, 0x80000000),
            ("RNDNE", -0.0, 0x80000000),
            ("RNDNE", -0.3, 0x80000000),
            ("FLOOR", 0.0, 0x00000000),
            ("TRUNC", 0.7, 0x00000000),
        ],
    )
    def test_rounding_ops_preserve_zero_sign(self, mnemonic, value, expected_bits):
        # IEEE roundToIntegral keeps the sign of zero results.
        assert bits(evaluate(op(mnemonic), (value,))) == expected_bits

    def test_flt_to_int_zero_is_unsigned(self):
        # The conversion produces an *integer* zero, which has no sign.
        assert bits(evaluate(op("FLT_TO_INT"), (-0.7,))) == 0x00000000
        assert bits(evaluate(op("FLT_TO_INT"), (-0.0,))) == 0x00000000

    def test_fract_of_zero_is_positive_zero(self):
        # a - floor(a) is +0.0 for either zero under IEEE floor.
        assert bits(evaluate(op("FRACT"), (0.0,))) == 0x00000000
        assert bits(evaluate(op("FRACT"), (-0.0,))) == 0x00000000

    def test_exp_log_inverse(self):
        x = float32(1.25)
        assert evaluate(op("LOG"), (evaluate(op("EXP"), (x,)),)) == pytest.approx(
            x, abs=1e-6
        )

    def test_log_zero_is_neg_inf(self):
        assert evaluate(op("LOG"), (0.0,)) == -math.inf

    def test_log_negative_is_nan(self):
        assert math.isnan(evaluate(op("LOG"), (-1.0,)))

    def test_exp_overflow_is_inf(self):
        assert evaluate(op("EXP"), (1000.0,)) == math.inf

    def test_sin_cos(self):
        assert evaluate(op("SIN"), (0.0,)) == 0.0
        assert evaluate(op("COS"), (0.0,)) == 1.0


class TestNonFiniteInputs:
    """Hardware conversion/rounding behaviour for inf and NaN inputs
    (originally caught by the executor property tests)."""

    @pytest.mark.parametrize("mnemonic", ["FLOOR", "TRUNC", "RNDNE", "INT_TO_FLT"])
    def test_rounding_ops_pass_infinity_through(self, mnemonic):
        assert evaluate(op(mnemonic), (math.inf,)) == math.inf
        assert evaluate(op(mnemonic), (-math.inf,)) == -math.inf

    @pytest.mark.parametrize(
        "mnemonic", ["FLOOR", "TRUNC", "RNDNE", "FRACT", "INT_TO_FLT"]
    )
    def test_rounding_ops_propagate_nan(self, mnemonic):
        assert math.isnan(evaluate(op(mnemonic), (math.nan,)))

    def test_fract_of_infinity_is_zero(self):
        assert evaluate(op("FRACT"), (math.inf,)) == 0.0
        assert evaluate(op("FRACT"), (-math.inf,)) == 0.0

    def test_flt_to_int_saturates_on_infinity(self):
        assert evaluate(op("FLT_TO_INT"), (math.inf,)) == 2147483648.0
        assert evaluate(op("FLT_TO_INT"), (-math.inf,)) == -2147483648.0

    def test_flt_to_int_nan_is_zero(self):
        assert evaluate(op("FLT_TO_INT"), (math.nan,)) == 0.0

    def test_sin_cos_of_infinity_is_nan(self):
        assert math.isnan(evaluate(op("SIN"), (math.inf,)))
        assert math.isnan(evaluate(op("COS"), (-math.inf,)))


class TestEvaluateContract:
    def test_every_opcode_evaluates(self):
        for opcode in FP_OPCODES:
            operands = tuple([1.5] * opcode.arity)
            result = evaluate(opcode, operands)
            assert isinstance(result, float)

    def test_results_are_single_precision(self):
        for opcode in FP_OPCODES:
            operands = tuple([1.1] * opcode.arity)
            result = evaluate(opcode, operands)
            if not math.isnan(result):
                assert result == float32(result)

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(IsaError):
            evaluate(op("ADD"), (1.0,))
        with pytest.raises(IsaError):
            evaluate(op("SQRT"), (1.0, 2.0))
