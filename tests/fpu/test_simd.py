"""Differential tests: vector column kernels vs scalar arithmetic.

``evaluate_columns`` promises element ``i`` is bitwise what
``arithmetic.evaluate`` returns for row ``i`` — the foundation the
vector backend's bit-identical contract rests on.  Sweep every FP
opcode over a deterministic operand grid of random singles plus the
IEEE specials.
"""

import struct

import numpy as np
import pytest

from repro.errors import IsaError
from repro.fpu import arithmetic
from repro.fpu.simd import evaluate_columns, kernel_for
from repro.isa.opcodes import FP_OPCODES

SPECIALS = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    float("nan"),
    float("inf"),
    float("-inf"),
    3.4028234663852886e38,  # float32 max
    1.401298464324817e-45,  # float32 min subnormal
    -2.5,
    0.5,
    1e-20,
]


def _operand_pool(seed: int, count: int = 64) -> list:
    rng = np.random.default_rng(seed)
    pool = [
        float(np.float32(v))
        for v in rng.uniform(-1e6, 1e6, size=count - len(SPECIALS))
    ]
    return SPECIALS + pool


def _bits64(value: float) -> bytes:
    return struct.pack("<d", value)


@pytest.mark.parametrize("opcode", FP_OPCODES, ids=lambda op: op.mnemonic)
def test_columns_bitwise_match_scalar(opcode):
    pool = _operand_pool(seed=hash(opcode.mnemonic) % (2**31))
    rng = np.random.default_rng(1234)
    rows = 96
    columns = [
        np.array(
            [pool[i] for i in rng.integers(0, len(pool), size=rows)],
            dtype=np.float64,
        )
        for _ in range(opcode.arity)
    ]
    vectorized = evaluate_columns(opcode, columns)
    for row in range(rows):
        operands = tuple(float(col[row]) for col in columns)
        scalar = arithmetic.evaluate(opcode, operands)
        assert _bits64(scalar) == _bits64(float(vectorized[row])), (
            f"{opcode.mnemonic}{operands}: scalar {scalar!r} != "
            f"vector {float(vectorized[row])!r}"
        )


def test_kernel_for_is_pre_rounding_stage():
    add = next(op for op in FP_OPCODES if op.mnemonic == "ADD")
    a = np.array([1.0, 2.0**-30], dtype=np.float64)
    b = np.array([2.0**-30, 1.0], dtype=np.float64)
    raw = kernel_for(add)(a, b)
    # The raw double keeps the tiny addend; the rounded single drops it.
    assert raw[0] != 1.0
    assert float(evaluate_columns(add, [a, b])[0]) == 1.0


def test_arity_mismatch_rejected():
    add = next(op for op in FP_OPCODES if op.mnemonic == "ADD")
    with pytest.raises(IsaError):
        evaluate_columns(add, [np.zeros(4)])
