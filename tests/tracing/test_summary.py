"""Tests for the ASCII timeline summary helpers."""

from repro.tracing.summary import (
    hit_bursts,
    lane_utilization,
    longest_stalls,
    render_timeline_summary,
)
from repro.tracing.timeline import TimelineTracer


def tracer_with_story() -> TimelineTracer:
    tracer = TimelineTracer()
    lane0 = tracer.lane_tracer(0, 0)
    lane1 = tracer.lane_tracer(0, 1)
    # lane0: hit, hit, miss, hit  -> bursts of 2 then 1 (still open).
    lane0.cycle = 10
    tracer.instant("memo.hit", "memo", 0, 0, 10)
    tracer.instant("memo.commute", "memo", 0, 0, 11)
    tracer.instant("memo.miss", "memo", 0, 0, 12)
    tracer.instant("memo.hit", "memo", 0, 0, 13)
    # lane1: two stalls of different length.
    tracer.span("ecu.recovery", "ecu", 0, 1, 5, 12)
    tracer.span("ecu.recovery", "ecu", 0, 1, 30, 4)
    lane1.cycle = 40
    return tracer


class TestLongestStalls:
    def test_sorted_by_duration(self):
        stalls = longest_stalls(tracer_with_story())
        assert stalls == [("cu0.lane1", 5, 12), ("cu0.lane1", 30, 4)]

    def test_top_limits_rows(self):
        assert len(longest_stalls(tracer_with_story(), top=1)) == 1


class TestHitBursts:
    def test_bursts_split_on_miss_and_close_at_end(self):
        bursts = hit_bursts(tracer_with_story())
        assert bursts == [("cu0.lane0", 10, 2), ("cu0.lane0", 13, 1)]

    def test_commute_counts_as_hit(self):
        tracer = TimelineTracer()
        tracer.lane_tracer(0, 0)
        tracer.instant("memo.commute", "memo", 0, 0, 0)
        tracer.instant("memo.commute", "memo", 0, 0, 1)
        assert hit_bursts(tracer) == [("cu0.lane0", 0, 2)]


class TestLaneUtilization:
    def test_stall_fraction(self):
        rows = lane_utilization(tracer_with_story())
        assert ("cu0.lane1", 40, 16, 0.4) in rows
        assert ("cu0.lane0", 10, 0, 0.0) in rows


class TestRender:
    def test_full_summary(self):
        text = render_timeline_summary(tracer_with_story(), top=5)
        assert "== timeline summary ==" in text
        assert "recovery stalls" in text and "hit bursts" in text
        assert "final cycle     : 40" in text

    def test_empty_tracer_fallbacks(self):
        text = render_timeline_summary(TimelineTracer())
        assert "no recovery stalls recorded" in text
        assert "no memoization hits recorded" in text
