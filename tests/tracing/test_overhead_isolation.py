"""Tracing must be observation-only: results are identical with it off.

The archetype's acceptance bar: enabling (or disabling) the tracer, the
profiler and the sentinel changes nothing about the simulated run — not
the kernel output bits, not a single counter.
"""

from repro.config import TracingConfig

from .conftest import traced_run


def run_signature(executor, output):
    device = executor.device
    return (
        output.to_array().tobytes(),
        device.executed_ops,
        {k: (c.ops, c.errors_injected, c.errors_masked, c.errors_recovered,
             c.issue_cycles, c.recovery_stall_cycles)
         for k, c in device.counters().items()},
        {k: (s.lookups, s.hits, s.updates) for k, s in device.lut_stats().items()},
        {k: (e.errors_seen, e.recoveries, e.recovery_cycles,
             e.masked_by_memoization) for k, e in device.ecu_stats().items()},
    )


class TestIsolation:
    def test_disabled_and_enabled_runs_are_bit_identical(self):
        traced, traced_out = traced_run(
            tracing=TracingConfig(
                enabled=True, record_ops=True, profile_host=True
            )
        )
        plain, plain_out = traced_run(tracing=TracingConfig(enabled=False))
        assert run_signature(traced, traced_out) == run_signature(
            plain, plain_out
        )

    def test_disabled_run_builds_no_tracer_state(self):
        executor, _ = traced_run(tracing=TracingConfig(enabled=False))
        assert executor.tracer is None
        assert executor.profiler is None
        for unit in executor.device.compute_units:
            assert unit.tracer is None
            for core in unit.stream_cores:
                assert core.tracer is None
