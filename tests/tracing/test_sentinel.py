"""Tests for the invariant sentinel.

The sentinel's value is that its inputs are maintained by *different*
code paths; these tests check both directions — a clean run agrees
everywhere, and a corrupted counter in any one system is caught.
"""

import pytest

from repro.config import TracingConfig
from repro.errors import InvariantViolation
from repro.isa.opcodes import UnitKind
from repro.tracing.sentinel import SentinelReport, audit_device

from .conftest import traced_run


class TestCleanRuns:
    def test_traced_run_passes_every_check(self, traced_executor):
        report = audit_device(traced_executor.device, traced_executor.tracer)
        assert report.ok, report.to_text()
        # Every section contributed: LUT, FPU/ECU, telemetry, perf,
        # energy and the trace-derived checks.
        names = {check.name for check in report.checks}
        assert any(n.startswith("lut.") for n in names)
        assert any(n.startswith("fpu.") for n in names)
        assert any(n.startswith("telemetry.") for n in names)
        assert any(n.startswith("energy.") for n in names)
        assert any(n.startswith("trace.") for n in names)

    def test_error_free_run_passes(self):
        executor, _ = traced_run(error_rate=0.0)
        report = audit_device(executor.device, executor.tracer)
        assert report.ok, report.to_text()

    def test_untraced_device_skips_timeline_checks_with_note(self):
        executor, _ = traced_run(tracing=TracingConfig(enabled=False))
        report = audit_device(executor.device, tracer=None)
        assert report.ok, report.to_text()
        assert any("timeline checks skipped" in note for note in report.notes)

    def test_saturated_tracer_still_audits_cursors(self):
        executor, _ = traced_run(
            tracing=TracingConfig(enabled=True, max_events=10)
        )
        tracer = executor.tracer
        assert tracer.dropped > 0
        report = audit_device(executor.device, tracer)
        assert report.ok, report.to_text()
        assert any("event-count checks skipped" in n for n in report.notes)
        assert any(
            check.name == "trace.lane_cursors==busy_cycles"
            for check in report.checks
        )


def _first_active_fpu(device):
    for unit in device.compute_units:
        for core in unit.stream_cores:
            for fpu in core.fpus.values():
                if fpu.counters.ops:
                    return fpu
    raise AssertionError("no FPU executed anything")


class TestCorruptionIsCaught:
    def test_corrupted_fpu_counter(self, traced_executor):
        fpu = _first_active_fpu(traced_executor.device)
        fpu.counters.ops += 1
        report = audit_device(traced_executor.device, traced_executor.tracer)
        assert not report.ok
        assert any(".ops==" in check.name for check in report.violations)

    def test_corrupted_ecu_stats(self, traced_executor):
        fpu = _first_active_fpu(traced_executor.device)
        fpu.ecu.stats.recoveries += 1
        report = audit_device(traced_executor.device, traced_executor.tracer)
        assert not report.ok

    def test_corrupted_telemetry_registry(self, traced_executor):
        hub = traced_executor.telemetry
        kind = UnitKind.ADD.value
        hub.registry.counter(f"cu0.sc0.fpu.{kind}.memo.lookups").inc(5)
        report = audit_device(traced_executor.device, traced_executor.tracer)
        assert not report.ok
        assert any(
            check.name == "telemetry.memo.lookups==canonical"
            for check in report.violations
        )

    def test_raise_if_violated_carries_the_report(self, traced_executor):
        fpu = _first_active_fpu(traced_executor.device)
        fpu.counters.errors_injected += 3
        report = audit_device(traced_executor.device, traced_executor.tracer)
        with pytest.raises(InvariantViolation) as excinfo:
            report.raise_if_violated()
        assert excinfo.value.report is report
        assert "invariant(s) violated" in str(excinfo.value)


class TestReportSurface:
    def test_check_exact_and_close(self):
        report = SentinelReport()
        report.check("a", 1, 1)
        report.check("b", 1.0, 1.0 + 1e-12, exact=False)
        report.check("c", 1, 2)
        assert [check.ok for check in report.checks] == [True, True, False]
        assert [check.name for check in report.violations] == ["c"]

    def test_text_and_dict_views(self):
        report = SentinelReport()
        report.check("good", 2, 2)
        report.check("bad", 2, 3)
        report.notes.append("a note")
        text = report.to_text()
        assert "FAIL (1 violated)" in text and "note: a note" in text
        data = report.to_dict()
        assert data["ok"] is False and len(data["checks"]) == 2

    def test_passing_report_does_not_raise(self):
        report = SentinelReport()
        report.check("fine", 0, 0)
        report.raise_if_violated()


class TestTraceVsTelemetry:
    """The direct timeline-vs-registry edge of the cross-check triangle."""

    def test_clean_run_includes_direct_cross_checks(self, traced_executor):
        report = audit_device(traced_executor.device, traced_executor.tracer)
        names = {check.name for check in report.checks}
        assert "trace.hits==telemetry.memo.hits" in names
        assert "trace.misses==telemetry.memo.misses" in names
        assert "trace.recovery_cycles==telemetry.ecu.recovery_cycles" in names
        assert "trace.wavefronts==telemetry.wavefronts" in names

    def test_corrupted_registry_fails_both_triangle_edges(
        self, traced_executor
    ):
        hub = traced_executor.telemetry
        kind = UnitKind.ADD.value
        hub.registry.counter(f"cu0.sc0.fpu.{kind}.memo.hits").inc(3)
        report = audit_device(traced_executor.device, traced_executor.tracer)
        violated = {check.name for check in report.violations}
        assert "telemetry.memo.hits==canonical" in violated
        assert "trace.hits==telemetry.memo.hits" in violated

    def test_telemetry_off_skips_with_note(self):
        executor, _ = traced_run(telemetry=False)
        report = audit_device(executor.device, executor.tracer)
        assert report.ok, report.to_text()
        assert any(
            "trace-vs-telemetry checks skipped" in note
            for note in report.notes
        )
        assert not any(
            "==telemetry." in check.name for check in report.checks
        )

    def test_saturated_tracer_skips_with_note(self):
        executor, _ = traced_run(
            tracing=TracingConfig(enabled=True, max_events=10)
        )
        report = audit_device(executor.device, executor.tracer)
        assert report.ok, report.to_text()
        assert any(
            "trace-vs-telemetry checks skipped" in note
            for note in report.notes
        )
