"""Golden tests for the Chrome trace-event (Perfetto) and JSONL exports."""

import json

from repro.tracing.export import (
    chrome_trace_dict,
    chrome_trace_events,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.tracing.timeline import TimelineTracer

#: The keys Perfetto requires on each phase letter.
SPAN_KEYS = {"name", "cat", "ph", "ts", "pid", "tid", "dur"}
INSTANT_KEYS = {"name", "cat", "ph", "ts", "pid", "tid", "s"}


def small_tracer() -> TimelineTracer:
    tracer = TimelineTracer()
    lane0 = tracer.lane_tracer(0, 0)
    lane1 = tracer.lane_tracer(0, 1)
    cu = tracer.cu_tracer(0, [lane0, lane1], scheduler_tid=4)
    started = cu.on_wavefront_start()
    tracer.span("ecu.recovery", "ecu", 0, 1, 3, 12)
    tracer.instant("memo.hit", "memo", 0, 0, 5)
    cu.on_wavefront_retired(started, rounds=1)
    return tracer


class TestChromeExport:
    def test_metadata_events_come_first(self):
        records = chrome_trace_events(small_tracer())
        meta = [r for r in records if r["ph"] == "M"]
        assert records[: len(meta)] == meta
        names = {(r["pid"], r["tid"]): r["args"]["name"] for r in meta}
        assert names[(0, 0)] in ("CU0", "lane0")
        process = [r for r in meta if r["name"] == "process_name"]
        threads = [r for r in meta if r["name"] == "thread_name"]
        assert [r["args"]["name"] for r in process] == ["CU0"]
        assert {r["args"]["name"] for r in threads} == {
            "lane0",
            "lane1",
            "scheduler",
        }

    def test_golden_event_schemas(self):
        records = chrome_trace_events(small_tracer())
        spans = [r for r in records if r["ph"] == "X"]
        instants = [r for r in records if r["ph"] == "i"]
        assert spans and instants
        for span in spans:
            assert SPAN_KEYS <= set(span)
        for instant in instants:
            assert INSTANT_KEYS <= set(instant)
            assert instant["s"] == "t"
        recovery = next(r for r in records if r["name"] == "ecu.recovery")
        assert recovery == {
            "name": "ecu.recovery",
            "cat": "ecu",
            "ph": "X",
            "ts": 3,
            "pid": 0,
            "tid": 1,
            "dur": 12,
        }

    def test_tracks_are_time_ordered(self):
        tracer = small_tracer()
        # Emit out of track order on purpose: the exporter must re-sort.
        tracer.instant("memo.miss", "memo", 0, 0, 1)
        records = [
            r for r in chrome_trace_events(tracer) if r["ph"] != "M"
        ]
        last = {}
        for record in records:
            key = (record["pid"], record["tid"])
            assert last.get(key, -1) <= record["ts"]
            last[key] = record["ts"]

    def test_document_shape_and_provenance(self):
        document = chrome_trace_dict(small_tracer(), label="unit-test")
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        other = document["otherData"]
        assert other["label"] == "unit-test"
        assert other["events_recorded"] == 4
        assert other["events_dropped"] == 0

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), small_tracer(), label="x")
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert any(r["ph"] == "X" for r in document["traceEvents"])


class TestJsonlExport:
    def test_typed_lines_with_manifest_first(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = write_trace_jsonl(
            str(path), small_tracer(), manifest={"label": "t"}
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == lines == 5
        assert records[0] == {"type": "manifest", "label": "t"}
        assert all(r["type"] == "trace_event" for r in records[1:])

    def test_manifest_is_optional(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = write_trace_jsonl(str(path), small_tracer())
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == 4
        assert {r["type"] for r in records} == {"trace_event"}


class TestTracedRunExport:
    def test_real_run_exports_loadable_trace(self, tmp_path, traced_executor):
        path = tmp_path / "run.json"
        write_chrome_trace(str(path), traced_executor.tracer)
        document = json.loads(path.read_text())
        records = document["traceEvents"]
        # One process per CU, lanes + scheduler named per CU.
        pids = {r["pid"] for r in records}
        assert pids == {0, 1}
        thread_meta = [r for r in records if r["name"] == "thread_name"]
        assert len(thread_meta) == 2 * (4 + 1)
        assert any(r["name"] == "wavefront" for r in records)
