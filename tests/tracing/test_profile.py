"""Tests for the host-phase profiler and the ambient capture stack."""

import pytest

from repro.config import TracingConfig
from repro.errors import TracingError
from repro.tracing import profile
from repro.tracing.profile import (
    DISPATCH_CHILDREN,
    HostPhaseProfiler,
    PHASE_DISPATCH,
    PHASE_LUT_LOOKUP,
    format_phase_report,
    merge_phase_snapshots,
)


class TestProfiler:
    def test_add_accumulates(self):
        prof = HostPhaseProfiler()
        prof.add("a", 0.5)
        prof.add("a", 0.25, calls=3)
        snapshot = prof.snapshot()
        assert snapshot["a"]["total_s"] == pytest.approx(0.75)
        assert snapshot["a"]["calls"] == 4

    def test_phase_context_manager_times_the_block(self):
        prof = HostPhaseProfiler()
        with prof.phase("x"):
            pass
        stat = prof.snapshot()["x"]
        assert stat["calls"] == 1 and stat["total_s"] >= 0.0

    def test_snapshot_is_sorted(self):
        prof = HostPhaseProfiler()
        prof.add("b", 1.0)
        prof.add("a", 1.0)
        assert list(prof.snapshot()) == ["a", "b"]


class TestMerge:
    def test_merge_sums_seconds_and_calls(self):
        merged = merge_phase_snapshots(
            [
                {"a": {"total_s": 1.0, "calls": 2}},
                {"a": {"total_s": 0.5, "calls": 1}, "b": {"total_s": 2.0, "calls": 4}},
            ]
        )
        assert merged["a"] == {"total_s": 1.5, "calls": 3}
        assert merged["b"] == {"total_s": 2.0, "calls": 4}

    def test_merge_empty(self):
        assert merge_phase_snapshots([]) == {}


class TestReport:
    def test_empty_report(self):
        assert "(no phases recorded)" in format_phase_report({})

    def test_nested_phases_are_indented_and_not_double_counted(self):
        snapshot = {
            PHASE_DISPATCH: {"total_s": 1.0, "calls": 1},
            PHASE_LUT_LOOKUP: {"total_s": 0.6, "calls": 100},
        }
        text = format_phase_report(snapshot)
        assert f"  {PHASE_LUT_LOOKUP}" in text
        # Share is against the top level only: dispatch owns 100%.
        assert "1 " in text
        assert PHASE_LUT_LOOKUP in DISPATCH_CHILDREN


class TestAmbientCapture:
    def test_capture_installs_and_removes(self):
        assert profile.current() is None
        with profile.capture() as prof:
            assert profile.current() is prof
        assert profile.current() is None

    def test_nested_captures_stack(self):
        with profile.capture() as outer:
            with profile.capture() as inner:
                assert profile.current() is inner
            assert profile.current() is outer

    def test_out_of_order_deactivation_raises(self):
        outer, inner = HostPhaseProfiler(), HostPhaseProfiler()
        profile.activate(outer)
        profile.activate(inner)
        with pytest.raises(TracingError):
            profile.deactivate(outer)
        profile.deactivate(inner)
        profile.deactivate(outer)


class TestRunAttribution:
    def test_profile_host_records_fpu_phases(self):
        from .conftest import traced_run

        executor, _ = traced_run(
            tracing=TracingConfig(enabled=True, profile_host=True)
        )
        snapshot = executor.profiler.snapshot()
        # Every executed FP op goes through exactly one LUT lookup.
        assert snapshot["fpu.lut_lookup"]["calls"] == executor.device.executed_ops
        assert "host.dispatch" in snapshot and "host.decode" in snapshot

    def test_ambient_capture_gets_coarse_phases(self):
        from .conftest import traced_run

        with profile.capture() as prof:
            traced_run(tracing=TracingConfig(enabled=False))
        snapshot = prof.snapshot()
        assert "host.dispatch" in snapshot
        # Fine-grained FPU phases need profile_host on the config.
        assert "fpu.lut_lookup" not in snapshot
