"""Tests for the timeline tracer, lane/CU tracers and the op-sink tree."""

import pytest

from repro.config import TracingConfig
from repro.gpu.trace import FpTraceCollector, NullTraceCollector, TraceCollector
from repro.isa.opcodes import opcode_by_mnemonic
from repro.memo.matching import MatchOutcome
from repro.tracing.timeline import (
    FanoutOpSink,
    INSTANT_COMMUTE,
    INSTANT_HIT,
    INSTANT_MASKED,
    INSTANT_MISS,
    NullOpSink,
    OpSink,
    SPAN_RECOVERY,
    SPAN_WAVEFRONT,
    TimelineTracer,
    compose_op_sinks,
)

ADD = opcode_by_mnemonic("ADD")


class TestFromConfig:
    def test_disabled_config_builds_nothing(self):
        assert TimelineTracer.from_config(TracingConfig()) is None
        assert TimelineTracer.from_config(None) is None

    def test_enabled_config_builds_tracer(self):
        tracer = TimelineTracer.from_config(TracingConfig(enabled=True))
        assert tracer is not None and len(tracer) == 0


class TestLaneTracer:
    def test_op_advances_cursor_without_events(self):
        tracer = TimelineTracer()
        lane = tracer.lane_tracer(0, 3)
        lane.on_op(ADD)
        lane.on_op(ADD)
        assert lane.cycle == 2
        assert len(tracer) == 0  # record_ops off by default

    def test_record_ops_emits_one_span_per_op(self):
        tracer = TimelineTracer(TracingConfig(enabled=True, record_ops=True))
        lane = tracer.lane_tracer(0, 0)
        lane.on_op(ADD)
        (event,) = tracer.events
        assert event.name == "ADD" and event.ph == "X"
        assert event.ts == 0 and event.dur == 1

    def test_memo_lookup_instants(self):
        tracer = TimelineTracer()
        lane = tracer.lane_tracer(0, 0)
        lane.on_memo_lookup(True, MatchOutcome.EXACT)
        lane.on_memo_lookup(True, MatchOutcome.COMMUTED)
        lane.on_memo_lookup(False, MatchOutcome.MISS)
        assert tracer.count(INSTANT_HIT) == 1
        assert tracer.count(INSTANT_COMMUTE) == 1
        assert tracer.count(INSTANT_MISS) == 1

    def test_recovery_span_advances_cursor(self):
        tracer = TimelineTracer()
        lane = tracer.lane_tracer(0, 0)
        lane.on_op(ADD)
        lane.on_recovery(12)
        assert lane.cycle == 13
        (event,) = list(tracer.iter_events(name=SPAN_RECOVERY))
        assert event.ts == 1 and event.dur == 12
        assert tracer.total_duration(SPAN_RECOVERY) == 12

    def test_masked_instant_does_not_stall(self):
        tracer = TimelineTracer()
        lane = tracer.lane_tracer(0, 0)
        lane.on_masked()
        assert lane.cycle == 0
        assert tracer.count(INSTANT_MASKED) == 1

    def test_lane_tracer_is_cached_per_track(self):
        tracer = TimelineTracer()
        assert tracer.lane_tracer(0, 1) is tracer.lane_tracer(0, 1)
        assert tracer.lane_tracer(0, 1) is not tracer.lane_tracer(1, 1)
        assert tracer.thread_names[(0, 1)] == "lane1"


class TestCuTracer:
    def test_scheduler_clock_is_max_lane_cursor(self):
        tracer = TimelineTracer()
        lanes = [tracer.lane_tracer(0, i) for i in range(2)]
        cu = tracer.cu_tracer(0, lanes, scheduler_tid=4)
        assert cu.now() == 0
        lanes[1].on_op(ADD)
        lanes[1].on_op(ADD)
        assert cu.now() == 2
        assert tracer.thread_names[(0, 4)] == "scheduler"

    def test_wavefront_span_covers_lane_activity(self):
        tracer = TimelineTracer()
        lanes = [tracer.lane_tracer(0, i) for i in range(2)]
        cu = tracer.cu_tracer(0, lanes, scheduler_tid=4)
        started = cu.on_wavefront_start()
        for lane in lanes:
            lane.on_op(ADD)
            lane.on_op(ADD)
        cu.on_wavefront_retired(started, rounds=2)
        (span,) = list(tracer.iter_events(name=SPAN_WAVEFRONT))
        assert span.ts == 0 and span.dur == 2
        assert span.args == {"rounds": 2}
        (counter,) = list(tracer.iter_events(ph="C"))
        assert counter.args == {"retired": 1}

    def test_rounds_are_opt_in(self):
        tracer = TimelineTracer()
        cu = tracer.cu_tracer(0, [tracer.lane_tracer(0, 0)], 4)
        cu.on_round(1)
        assert tracer.count("round") == 0
        tracer2 = TimelineTracer(TracingConfig(enabled=True, record_rounds=True))
        cu2 = tracer2.cu_tracer(0, [tracer2.lane_tracer(0, 0)], 4)
        cu2.on_round(1)
        assert tracer2.count("round") == 1


class TestEventBound:
    def test_max_events_counts_overflow(self):
        tracer = TimelineTracer(TracingConfig(enabled=True, max_events=2))
        lane = tracer.lane_tracer(0, 0)
        for _ in range(5):
            lane.on_memo_lookup(False, MatchOutcome.MISS)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        # Cursors keep advancing regardless of the event bound.
        lane.on_op(ADD)
        assert lane.cycle == 1


class RecordingSink(OpSink):
    def __init__(self):
        self.seen = []

    def record(self, cu_index, lane_index, opcode, operands, result):
        self.seen.append((cu_index, lane_index, opcode, operands, result))


class TestOpSinks:
    def test_compose_empty_is_null(self):
        sink = compose_op_sinks([])
        assert isinstance(sink, NullOpSink) and not sink.enabled
        sink.record(0, 0, ADD, (1.0, 2.0), 3.0)  # no-op

    def test_compose_single_is_identity(self):
        sink = RecordingSink()
        assert compose_op_sinks([None, sink]) is sink

    def test_compose_many_fans_out(self):
        sinks = [RecordingSink(), RecordingSink()]
        fanout = compose_op_sinks(sinks)
        assert isinstance(fanout, FanoutOpSink)
        fanout.record(1, 2, ADD, (1.0, 2.0), 3.0)
        for sink in sinks:
            assert sink.seen == [(1, 2, ADD, (1.0, 2.0), 3.0)]

    def test_fp_trace_collector_is_registered_sink(self):
        assert issubclass(FpTraceCollector, OpSink)
        assert issubclass(NullTraceCollector, NullOpSink)
        assert TraceCollector is OpSink  # back-compat alias

    def test_base_sink_requires_record(self):
        with pytest.raises(NotImplementedError):
            OpSink().record(0, 0, ADD, (1.0,), 1.0)
