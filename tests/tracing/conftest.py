"""Shared fixtures for the tracing tests."""

import pytest

from repro.config import (
    ArchConfig,
    MemoConfig,
    SimConfig,
    TelemetryConfig,
    TimingConfig,
    TracingConfig,
)
from repro.gpu.executor import GpuExecutor
from repro.kernels.api import Buffer


def mix_kernel(ctx, src, dst):
    """Enough op mix to exercise hits, misses and recoveries."""
    x = src.load(ctx.global_id)
    y = yield ctx.fmul(x, 0.5)
    z = yield ctx.fadd(y, 1.0)
    w = yield ctx.fsqrt(z)
    dst.store(ctx.global_id, w)


def traced_run(
    error_rate: float = 0.02,
    seed: int = 7,
    tracing: TracingConfig = None,
    telemetry: bool = True,
    compute_units: int = 2,
    global_size: int = 64,
):
    """Run the mix kernel on a tiny traced device; returns the executor."""
    config = SimConfig(
        arch=ArchConfig(
            num_compute_units=compute_units,
            stream_cores_per_cu=4,
            wavefront_size=8,
        ),
        memo=MemoConfig(threshold=0.05),
        timing=TimingConfig(error_rate=error_rate, seed=seed),
        telemetry=TelemetryConfig(enabled=telemetry),
        tracing=tracing
        if tracing is not None
        else TracingConfig(enabled=True),
    )
    executor = GpuExecutor(config)
    src = Buffer([0.25 * (i % 8) for i in range(global_size)])
    dst = Buffer.zeros(global_size)
    executor.run(mix_kernel, global_size, (src, dst))
    return executor, dst


@pytest.fixture
def traced_executor():
    executor, _ = traced_run()
    return executor
