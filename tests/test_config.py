"""Tests for configuration dataclasses."""

import pytest

from repro.config import (
    ArchConfig,
    MemoConfig,
    NOMINAL_VOLTAGE,
    PE_LABELS,
    SimConfig,
    TimingConfig,
    small_arch,
)
from repro.errors import ConfigError


class TestArchConfig:
    def test_evergreen_defaults(self):
        arch = ArchConfig()
        assert arch.num_compute_units == 20
        assert arch.stream_cores_per_cu == 16
        assert arch.pes_per_stream_core == 5
        assert arch.wavefront_size == 64
        assert arch.subwavefronts_per_wavefront == 4
        assert arch.total_stream_cores == 320

    def test_pe_labels(self):
        assert PE_LABELS == ("X", "Y", "Z", "W", "T")

    def test_pipeline_depths(self):
        arch = ArchConfig()
        assert arch.fpu_pipeline_stages == 4
        assert arch.recip_pipeline_stages == 16

    def test_wavefront_must_divide_into_subwavefronts(self):
        with pytest.raises(ConfigError):
            ArchConfig(wavefront_size=50)

    def test_recip_cannot_be_shallower_than_fpu(self):
        with pytest.raises(ConfigError):
            ArchConfig(fpu_pipeline_stages=8, recip_pipeline_stages=4)

    def test_scaled_copy(self):
        arch = ArchConfig().scaled(num_compute_units=2)
        assert arch.num_compute_units == 2
        assert arch.stream_cores_per_cu == 16

    def test_small_arch_keeps_simd_shape(self):
        arch = small_arch()
        assert arch.num_compute_units == 1
        assert arch.stream_cores_per_cu == 16
        assert arch.subwavefronts_per_wavefront == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_compute_units": 0},
            {"stream_cores_per_cu": 0},
            {"pes_per_stream_core": 0},
            {"wavefront_size": 0},
            {"fpu_pipeline_stages": 0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            ArchConfig(**kwargs)


class TestMemoConfig:
    def test_defaults_follow_paper(self):
        memo = MemoConfig()
        assert memo.fifo_depth == 2
        assert memo.threshold == 0.0
        assert memo.exact
        assert memo.commutative_matching
        assert not memo.update_on_timing_error
        assert not memo.power_gated

    def test_approximate_config_not_exact(self):
        assert not MemoConfig(threshold=0.5).exact
        assert not MemoConfig(masked_fraction_bits=4).exact

    def test_with_threshold_and_depth(self):
        memo = MemoConfig().with_threshold(0.8).with_depth(8)
        assert memo.threshold == 0.8
        assert memo.fifo_depth == 8

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            MemoConfig(fifo_depth=0)
        with pytest.raises(ConfigError):
            MemoConfig(threshold=-1.0)
        with pytest.raises(ConfigError):
            MemoConfig(masked_fraction_bits=24)


class TestTimingConfig:
    def test_defaults(self):
        timing = TimingConfig()
        assert timing.error_rate == 0.0
        assert timing.recovery_cycles == 12
        assert timing.voltage == NOMINAL_VOLTAGE

    def test_with_helpers(self):
        timing = TimingConfig().with_error_rate(0.04).with_voltage(0.8)
        assert timing.error_rate == 0.04
        assert timing.voltage == 0.8

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            TimingConfig(error_rate=1.5)
        with pytest.raises(ConfigError):
            TimingConfig(recovery_cycles=0)
        with pytest.raises(ConfigError):
            TimingConfig(voltage=2.0)


class TestSimConfig:
    def test_bundle_defaults(self):
        config = SimConfig()
        assert config.arch.num_compute_units == 20
        assert not config.collect_traces

    def test_with_helpers(self):
        config = SimConfig().with_memo(MemoConfig(threshold=1.0))
        assert config.memo.threshold == 1.0
        config = config.with_timing(TimingConfig(error_rate=0.02))
        assert config.timing.error_rate == 0.02
        assert config.memo.threshold == 1.0
