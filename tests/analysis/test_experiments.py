"""Tests for the experiment drivers (scaled down for speed)."""

import math

import pytest

from repro.analysis.experiments import (
    run_fig2_to_5_psnr,
    run_fig6_7_hit_rates,
    run_fig8_kernel_hit_rates,
    run_fig10_energy_vs_error_rate,
    run_fig11_voltage_overscaling,
    run_fifo_depth_study,
    run_table1,
    run_table2_state_machine,
)
from repro.analysis.hitrate import collect_hit_rates
from repro.analysis.sweep import fifo_depth_sweep, threshold_sweep
from repro.kernels.registry import KERNEL_REGISTRY


class TestPsnrExperiment:
    def test_sobel_face_shape(self):
        result = run_fig2_to_5_psnr("Sobel", "face", size=32, thresholds=(0.0, 1.0))
        psnr_series = result.series_values("PSNR dB")
        assert psnr_series[0] == math.inf  # exact matching lossless
        assert psnr_series[1] < psnr_series[0]
        hit_series = result.series_values("hit rate")
        assert hit_series[1] >= hit_series[0]

    def test_experiment_ids(self):
        result = run_fig2_to_5_psnr("Gaussian", "book", size=16, thresholds=(0.0,))
        assert result.experiment_id == "Fig 5"

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            run_fig2_to_5_psnr("Median", "face")

    def test_to_text_renders(self):
        result = run_fig2_to_5_psnr("Sobel", "face", size=16, thresholds=(0.0,))
        text = result.to_text()
        assert "Fig 2" in text and "PSNR" in text


class TestHitRateExperiments:
    def test_fig6_has_both_images(self):
        results = run_fig6_7_hit_rates("Sobel", size=24, thresholds=(0.0, 1.0))
        assert set(results) == {"face", "book"}
        face = results["face"]
        assert "SQRT" in face.series
        assert "FP2INT" in face.series

    def test_collect_hit_rates_sample(self):
        spec = KERNEL_REGISTRY["FWT"]
        sample = collect_hit_rates(spec.default_factory(), 0.0)
        assert sample.workload == "FWT"
        assert 0.0 <= sample.weighted <= 1.0
        assert sample.executed_ops > 0
        assert sample.activated_units()


class TestFifoDepthStudy:
    def test_hit_rate_non_decreasing_in_depth(self):
        spec = KERNEL_REGISTRY["Haar"]
        points = fifo_depth_sweep(spec.default_factory, [1, 2, 8], spec.threshold)
        rates = [p.hit_rate for p in points]
        assert rates[0] <= rates[1] <= rates[2] + 1e-9

    def test_study_reports_gains(self):
        result = run_fifo_depth_study(depths=(2, 8), kernels=("Haar", "FWT"))
        gains = result.series_values("gain vs depth 2")
        assert gains[0] == 0.0
        assert gains[1] >= 0.0


class TestThresholdSweep:
    def test_threshold_zero_point_has_no_error(self):
        spec = KERNEL_REGISTRY["Haar"]
        points = threshold_sweep(spec.default_factory, [0.0, 0.5])
        assert points[0].hit_rate <= points[1].hit_rate
        assert points[0].baseline_energy_pj > 0
        assert points[0].saving == 1 - (
            points[0].memo_energy_pj / points[0].baseline_energy_pj
        )


class TestTableExperiments:
    def test_table1_renders_without_validation(self):
        text = run_table1(validate=False)
        assert "Sobel" in text and "EigenValue" in text
        assert "1536x1536" in text

    def test_table2_renders_all_states(self):
        text = run_table2_state_machine()
        assert "masking error" in text
        assert "Q_L" in text and "Q_S" in text


class TestFig8:
    def test_every_kernel_has_weighted_average(self):
        result = run_fig8_kernel_hit_rates()
        assert len(result.x_values) == 7
        weighted = result.series_values("weighted avg")
        assert all(0.0 <= w <= 1.0 for w in weighted)

    def test_unactivated_units_are_none(self):
        result = run_fig8_kernel_hit_rates()
        fwt_index = result.x_values.index("FWT")
        assert result.series["RECIP"][fwt_index] is None  # FWT never divides
        assert result.series["ADD"][fwt_index] is not None


class TestFig10:
    def test_average_saving_grows_with_error_rate(self):
        result = run_fig10_energy_vs_error_rate(
            rates=(0.0, 0.04), kernels=("Sobel", "Haar")
        )
        avg = result.series_values("AVERAGE")
        assert avg[1] > avg[0] > 0.0


class TestFig11:
    def test_crossover_shape(self):
        result = run_fig11_voltage_overscaling(
            voltages=(0.90, 0.86, 0.80), kernels=("Haar", "FWT")
        )
        base = result.series_values("baseline (norm)")
        memo = result.series_values("memoized (norm)")
        savings = result.series_values("avg saving")
        # Baseline energy drops with voltage until errors blow it up.
        assert base[1] < base[0]
        assert base[2] > base[1]
        # Memoized is cheaper at the deep-overscaling point.
        assert memo[2] < base[2]
        assert savings[2] > savings[1]
