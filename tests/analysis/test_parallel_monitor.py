"""Monitored `run_sharded`: pure-observer contract and escalation.

A monitor attached to the engine must never change results, and the
watchdog's ``cancel`` policy must tear the pool down through the
existing failure path.
"""

import time

import pytest

from repro.analysis.parallel import run_sharded
from repro.errors import ParallelExecutionError
from repro.monitor.events import MonitorEventKind
from repro.monitor.run import MonitorConfig, RunMonitor, capture_monitor


# Pool workers must be module-level so they pickle by reference.
def double(task):
    return task * 2


def sleep_forever(task):
    time.sleep(3600)


def make_monitor(**overrides):
    defaults = dict(
        heartbeat_interval_s=0.05, stall_after_s=30.0, poll_interval_s=0.05
    )
    defaults.update(overrides)
    return RunMonitor(MonitorConfig(**defaults), label="test")


class TestPureObserver:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_results_identical_with_and_without_monitor(self, jobs):
        tasks = [3, 1, 2]
        plain_results, plain_report = run_sharded(tasks, double, jobs=jobs)
        monitor = make_monitor()
        monitored_results, monitored_report = run_sharded(
            tasks, double, jobs=jobs, monitor=monitor
        )
        assert monitored_results == plain_results
        assert [s.label for s in monitored_report.shards] == [
            s.label for s in plain_report.shards
        ]
        assert monitored_report.serial == plain_report.serial

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_monitor_observes_all_shards(self, jobs):
        monitor = make_monitor()
        run_sharded([1, 2, 3], double, jobs=jobs, monitor=monitor)
        assert monitor.counts()["done"] == 3
        assert monitor.registry.value("monitor.shards.started") == 3
        assert monitor.registry.value("monitor.shards.finished") == 3
        kinds = [event.kind for event in monitor.events]
        assert kinds.count(MonitorEventKind.SHARD_FINISHED) == 3

    def test_ambient_monitor_picked_up(self):
        monitor = make_monitor()
        with capture_monitor(monitor):
            run_sharded([1, 2], double, jobs=1)
        assert monitor.counts()["done"] == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_shard_records_carry_resources(self, jobs):
        _, report = run_sharded([1], double, jobs=jobs)
        record = report.shards[0]
        assert record.cpu_time_s is not None
        assert record.cpu_time_s >= 0.0
        assert record.max_rss_kb is not None and record.max_rss_kb > 0
        payload = record.to_dict()
        assert "cpu_time_s" in payload and "max_rss_kb" in payload


class TestCancelEscalation:
    def test_stalled_shard_cancelled_by_watchdog(self):
        # Heartbeat interval far beyond the stall threshold: the sleeping
        # worker never re-arms the watchdog, which escalates to cancel.
        monitor = make_monitor(
            heartbeat_interval_s=60.0,
            stall_after_s=0.2,
            poll_interval_s=0.05,
            policy="cancel",
        )
        with pytest.raises(ParallelExecutionError, match="watchdog"):
            run_sharded([1, 2], sleep_forever, jobs=2, monitor=monitor)
        kinds = [event.kind for event in monitor.events]
        assert MonitorEventKind.SHARD_CANCELLED in kinds

    def test_warn_policy_does_not_cancel(self):
        monitor = make_monitor(
            heartbeat_interval_s=60.0,
            stall_after_s=0.05,
            poll_interval_s=0.02,
            policy="warn",
        )
        results, _ = run_sharded([1], double, jobs=1, monitor=monitor)
        assert results == [2]
