"""Tests for the full-report generator."""

import pytest

from repro.analysis.reporting import SECTIONS, SLOW_SECTIONS, generate_report


class TestGenerateReport:
    def test_selected_sections_only(self):
        run = generate_report(sections=["Table 2"])
        assert run.sections_run == ["Table 2"]
        assert "masking error" in run.text
        assert "Figure 2" not in run.text

    def test_quick_skips_slow_sections(self):
        # The full quick report takes ~30s; verify the selection logic
        # itself (the sections a quick run would execute).
        selected = [name for name in SECTIONS if name not in SLOW_SECTIONS]
        assert "Figure 10" not in selected
        assert "FIFO depth (S4.1)" not in selected
        assert "Table 1" in selected

    def test_header_is_single(self):
        run = generate_report(sections=["Table 2"])
        assert run.text.count("Reproduced evaluation") == 1
        assert run.text.startswith("Temporal Memoization")

    def test_timings_recorded(self):
        run = generate_report(sections=["Table 2"])
        assert run.seconds_per_section["Table 2"] >= 0.0

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError):
            generate_report(sections=["Figure 99"])

    def test_all_paper_sections_registered(self):
        expected = {
            "Table 1", "Table 2", "Figure 2", "Figure 3", "Figure 4",
            "Figure 5", "Figure 6", "Figure 7", "Figure 8",
            "FIFO depth (S4.1)", "Figure 10", "Figure 11",
        }
        assert set(SECTIONS) == expected
