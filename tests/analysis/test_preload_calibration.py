"""Tests for LUT preloading and the energy-model calibration toolkit."""

import pytest

from repro.analysis.calibration import AnalyticModel, solve_params
from repro.analysis.preload import (
    build_preload_profile,
    preload_device,
)
from repro.analysis.replay import capture_trace
from repro.config import MemoConfig, SimConfig, small_arch
from repro.energy.params import EnergyParams
from repro.errors import EnergyModelError, MemoizationError
from repro.gpu.executor import GpuExecutor
from repro.gpu.trace import FpTraceCollector
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic
from repro.kernels.binomial_option import BinomialOptionWorkload

ADD = opcode_by_mnemonic("ADD")
MUL = opcode_by_mnemonic("MUL")


def trace_of(events):
    trace = FpTraceCollector()
    for cu, lane, opcode, operands, result in events:
        trace.record(cu, lane, opcode, operands, result)
    return trace


class TestBuildProfile:
    def test_most_frequent_contexts_selected(self):
        trace = trace_of(
            [(0, 0, ADD, (1.0, 1.0), 2.0)] * 5
            + [(0, 0, ADD, (2.0, 2.0), 4.0)] * 3
            + [(0, 0, ADD, (3.0, 3.0), 6.0)] * 1
        )
        profile = build_preload_profile(trace, entries_per_unit=2)
        entries = profile.entries_for(UnitKind.ADD)
        assert len(entries) == 2
        # Most frequent context is last (youngest after preload).
        assert entries[-1] == (ADD, (1.0, 1.0), 2.0)
        assert entries[0] == (ADD, (2.0, 2.0), 4.0)

    def test_per_unit_separation(self):
        trace = trace_of(
            [(0, 0, ADD, (1.0, 1.0), 2.0), (0, 0, MUL, (2.0, 2.0), 4.0)]
        )
        profile = build_preload_profile(trace)
        assert profile.entries_for(UnitKind.ADD)
        assert profile.entries_for(UnitKind.MUL)
        assert profile.entries_for(UnitKind.SQRT) == ()
        assert profile.total_entries == 2

    def test_invalid_entry_count(self):
        with pytest.raises(MemoizationError):
            build_preload_profile(FpTraceCollector(), entries_per_unit=0)


class TestPreloadDevice:
    def test_preload_eliminates_cold_start_misses(self):
        """Section 4.2's compiler-directed preloading on a real kernel.

        With only 16 options (one work-item per lane) every lane pays
        cold-start misses for the shared lattice constants; preloading a
        profile from an earlier run turns them into hits.
        """
        def workload_factory():
            return BinomialOptionWorkload(16, steps=4)
        profile = build_preload_profile(capture_trace(workload_factory()))

        def run(with_preload):
            config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
            executor = GpuExecutor(config)
            if with_preload:
                writes = preload_device(executor.device, profile)
                assert writes > 0
            workload_factory().run(executor)
            stats = executor.device.lut_stats()
            return stats[UnitKind.SQRT].hit_rate, stats[UnitKind.RECIP].hit_rate

        cold_sqrt, cold_recip = run(with_preload=False)
        warm_sqrt, warm_recip = run(with_preload=True)
        # One item per lane -> the cold run never hits on these units.
        assert cold_sqrt == 0.0 and cold_recip == 0.0
        # The preloaded lattice constants hit immediately (the third
        # rotating context on each unit still misses with a 2-entry FIFO).
        assert warm_sqrt >= 0.6
        assert warm_recip >= 0.6

    def test_preload_rejected_on_baseline_device(self):
        config = SimConfig(arch=small_arch())
        executor = GpuExecutor(config, memoized=False)
        with pytest.raises(MemoizationError):
            preload_device(
                executor.device,
                build_preload_profile(trace_of([(0, 0, ADD, (1.0, 1.0), 2.0)])),
            )


class TestAnalyticModel:
    def test_hit_retained_fraction_matches_hand_computation(self):
        params = EnergyParams(control_fraction=0.2, gated_stage_residual=0.1)
        model = AnalyticModel(params)
        expected = 0.2 + 0.8 * (0.25 + 0.75 * 0.1)
        assert model.hit_retained_fraction == pytest.approx(expected)

    def test_saving_decreases_with_retained_fraction(self):
        low = AnalyticModel(EnergyParams(control_fraction=0.1))
        high = AnalyticModel(EnergyParams(control_fraction=0.5))
        assert low.predicted_saving(0.4, 0.0) > high.predicted_saving(0.4, 0.0)

    def test_saving_grows_with_error_rate(self):
        model = AnalyticModel(EnergyParams())
        series = model.predict_series(0.4, [0.0, 0.02, 0.04])
        values = list(series.values())
        assert values[0] < values[1] < values[2]

    def test_saving_bounded_by_hit_rate(self):
        model = AnalyticModel(EnergyParams())
        assert model.predicted_saving(0.4, 0.5) < 0.4

    def test_default_params_predict_near_paper_series(self):
        """The shipped defaults were produced by this calibration: they
        must predict the Figure-10 anchors for the measured hit rate."""
        model = AnalyticModel(EnergyParams())
        h = 0.31  # measured average over the seven scaled kernels
        assert model.predicted_saving(h, 0.0) == pytest.approx(0.13, abs=0.04)
        assert model.predicted_saving(h, 0.04) == pytest.approx(0.24, abs=0.05)


class TestSolveParams:
    def test_solved_params_hit_the_anchors(self):
        h = 0.35
        params = solve_params(h, 0.13, 0.25)
        model = AnalyticModel(params)
        assert model.predicted_saving(h, 0.0) == pytest.approx(0.13, abs=1e-6)
        assert model.predicted_saving(h, 0.04) == pytest.approx(0.25, abs=1e-6)

    def test_unreachable_zero_anchor_rejected(self):
        with pytest.raises(EnergyModelError):
            solve_params(0.10, target_saving_at_zero=0.13)

    def test_anchor_above_masking_ceiling_rejected(self):
        with pytest.raises(EnergyModelError):
            solve_params(0.20, 0.05, target_saving_at_four_percent=0.30)

    def test_invalid_hit_rate_rejected(self):
        with pytest.raises(EnergyModelError):
            solve_params(0.0)
        with pytest.raises(EnergyModelError):
            solve_params(1.0)
