"""Tests for multi-seed statistical measurement."""

import pytest

from repro.analysis.multirun import Statistic, measure_with_seeds
from repro.errors import ConfigError
from repro.kernels.registry import KERNEL_REGISTRY


class TestStatistic:
    def test_from_values(self):
        stat = Statistic.from_values([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.std == pytest.approx((2.0 / 3.0) ** 0.5)
        assert stat.minimum == 1.0 and stat.maximum == 3.0
        assert stat.samples == 3

    def test_single_value_zero_spread(self):
        stat = Statistic.from_values([5.0])
        assert stat.mean == 5.0 and stat.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Statistic.from_values([])

    def test_str_rendering(self):
        assert "n=2" in str(Statistic.from_values([1.0, 2.0]))


class TestMeasureWithSeeds:
    def test_error_free_runs_are_seed_invariant(self):
        spec = KERNEL_REGISTRY["Haar"]
        measurement = measure_with_seeds(
            spec.default_factory, spec.threshold, 0.0, seeds=(1, 2, 3)
        )
        # Without errors the simulation is fully deterministic.
        assert measurement.saving.std == pytest.approx(0.0, abs=1e-12)
        assert measurement.hit_rate.std == pytest.approx(0.0, abs=1e-12)

    def test_errant_runs_vary_but_cluster(self):
        spec = KERNEL_REGISTRY["Haar"]
        measurement = measure_with_seeds(
            spec.default_factory, spec.threshold, 0.05, seeds=(1, 2, 3, 4)
        )
        # The spread is real but small relative to the mean.
        assert measurement.saving.std < 0.2
        assert measurement.saving.minimum <= measurement.saving.mean
        assert measurement.saving.maximum >= measurement.saving.mean

    def test_errors_increase_mean_saving(self):
        spec = KERNEL_REGISTRY["Haar"]
        clean = measure_with_seeds(
            spec.default_factory, spec.threshold, 0.0, seeds=(1, 2)
        )
        errant = measure_with_seeds(
            spec.default_factory, spec.threshold, 0.04, seeds=(1, 2)
        )
        assert errant.saving.mean > clean.saving.mean

    def test_no_seeds_rejected(self):
        spec = KERNEL_REGISTRY["Haar"]
        with pytest.raises(ConfigError):
            measure_with_seeds(spec.default_factory, 0.0, 0.0, seeds=())
