"""Tests for locality analysis and trace replay."""

import pytest

from repro.analysis.locality import (
    aligned_lane_streams,
    analyze_trace,
    compare_temporal_vs_spatial,
    fifo_capture_fraction,
    normalized_entropy,
    operand_entropy,
    reuse_distance_histogram,
)
from repro.analysis.replay import capture_trace, replay_trace
from repro.config import MemoConfig, SimConfig, TimingConfig, small_arch
from repro.gpu.executor import GpuExecutor
from repro.gpu.trace import TraceEvent
from repro.isa.opcodes import UnitKind, opcode_by_mnemonic
from repro.kernels.registry import workload_by_name

ADD = opcode_by_mnemonic("ADD")
MUL = opcode_by_mnemonic("MUL")


def make_events(operand_sets, opcode=ADD, lane=0):
    return [
        TraceEvent(0, lane, opcode, operands, 0.0) for operands in operand_sets
    ]


class TestEntropy:
    def test_constant_stream_zero_entropy(self):
        events = make_events([(1.0, 2.0)] * 16)
        assert operand_entropy(events) == 0.0
        assert normalized_entropy(events) == 0.0

    def test_all_distinct_max_entropy(self):
        events = make_events([(float(i), 0.0) for i in range(16)])
        assert operand_entropy(events) == pytest.approx(4.0)
        assert normalized_entropy(events) == pytest.approx(1.0)

    def test_two_level_stream(self):
        events = make_events([(1.0, 1.0), (2.0, 2.0)] * 8)
        assert operand_entropy(events) == pytest.approx(1.0)

    def test_opcode_part_of_context(self):
        events = make_events([(1.0, 2.0)] * 4, ADD) + make_events(
            [(1.0, 2.0)] * 4, MUL
        )
        assert operand_entropy(events) == pytest.approx(1.0)

    def test_empty_stream(self):
        assert operand_entropy([]) == 0.0
        assert normalized_entropy([]) == 0.0


class TestReuseDistance:
    def test_immediate_repeat_distance_one(self):
        events = make_events([(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)])
        histogram = reuse_distance_histogram(events)
        assert histogram[1] == 2
        assert histogram[-1] == 1  # the first occurrence

    def test_alternating_contexts_distance_two(self):
        events = make_events([(1.0, 1.0), (2.0, 2.0)] * 4)
        histogram = reuse_distance_histogram(events)
        assert histogram[2] == 6
        assert histogram[-1] == 2

    def test_fifo_capture_fraction_alternating(self):
        events = make_events([(1.0, 1.0), (2.0, 2.0)] * 8)
        assert fifo_capture_fraction(events, depth=1) == 0.0
        assert fifo_capture_fraction(events, depth=2) == pytest.approx(14 / 16)

    def test_capture_fraction_matches_measured_hit_rate(self):
        """The reuse-distance bound equals the actual depth-2 exact hit
        rate (with commutative matching off — the bound counts identical
        contexts only)."""
        trace = capture_trace(workload_by_name("FWT"))
        result = replay_trace(
            trace,
            MemoConfig(threshold=0.0, fifo_depth=2, commutative_matching=False),
        )
        # Compute the capture bound per FPU stream, aggregated.
        per_stream = trace.per_fpu_streams()
        captured = 0
        total = 0
        for events in per_stream.values():
            captured += fifo_capture_fraction(events, 2) * len(events)
            total += len(events)
        assert result.weighted_hit_rate == pytest.approx(
            captured / total, abs=1e-9
        )


class TestAnalyzeTrace:
    def test_reports_per_activated_unit(self):
        trace = capture_trace(workload_by_name("Haar"))
        reports = analyze_trace(trace)
        assert UnitKind.ADD in reports
        assert UnitKind.MUL in reports
        report = reports[UnitKind.ADD]
        assert report.executions > 0
        assert 0.0 <= report.normalized_entropy <= 1.0
        assert 0.0 <= report.fifo2_capture <= 1.0

    def test_low_entropy_claim_on_image_kernel(self):
        """Section 4: data-level parallel execution has low value entropy."""
        from repro.images.synth import synth_face
        from repro.kernels.sobel import SobelWorkload

        trace = capture_trace(SobelWorkload(synth_face(24)))
        reports = analyze_trace(trace)
        # The conversion unit sees 8-bit pixels: far below max entropy.
        assert reports[UnitKind.FP2INT].normalized_entropy < 0.75


class TestReplay:
    def test_replay_matches_direct_run_exact_matching(self):
        def workload_factory():
            return workload_by_name("Haar")
        trace = capture_trace(workload_factory())
        replayed = replay_trace(trace, MemoConfig(threshold=0.0))

        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        executor = GpuExecutor(config)
        workload_factory().run(executor)
        direct = executor.device.lut_stats()

        for unit, stats in direct.items():
            if stats.lookups:
                assert replayed.per_unit_lut_stats[unit].hits == stats.hits
                assert replayed.per_unit_lut_stats[unit].lookups == stats.lookups

    def test_replay_depth_sweep_monotone(self):
        trace = capture_trace(workload_by_name("FWT"))
        rates = [
            replay_trace(trace, MemoConfig(fifo_depth=d)).weighted_hit_rate
            for d in (1, 2, 8, 32)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_replay_counts_errors(self):
        trace = capture_trace(workload_by_name("FWT"))
        result = replay_trace(
            trace,
            MemoConfig(power_gated=True),
            TimingConfig(error_rate=0.05),
        )
        injected = sum(
            c.errors_injected for c in result.per_unit_counters.values()
        )
        ops = sum(c.ops for c in result.per_unit_counters.values())
        assert 0.02 < injected / ops < 0.08


class TestTemporalVsSpatial:
    def test_aligned_streams_have_equal_lengths(self):
        trace = capture_trace(workload_by_name("FWT"))
        streams = aligned_lane_streams(trace, 0, UnitKind.ADD)
        assert len(streams) == 16
        assert len({len(s) for s in streams}) == 1

    def test_comparison_produces_rates_for_shared_units(self):
        comparison = compare_temporal_vs_spatial(workload_by_name("FWT"))
        assert comparison.per_unit_temporal
        for unit, rate in comparison.per_unit_spatial.items():
            assert 0.0 <= rate <= 1.0
        assert 0.0 <= comparison.temporal_weighted <= 1.0
        assert 0.0 <= comparison.spatial_weighted <= 1.0

    def test_binomial_setup_reuses_both_ways(self):
        """The per-option lattice constants are identical across lanes AND
        across time: both styles must capture them."""
        from repro.kernels.binomial_option import BinomialOptionWorkload

        comparison = compare_temporal_vs_spatial(
            BinomialOptionWorkload(64, steps=4)
        )
        assert comparison.per_unit_temporal[UnitKind.SQRT] > 0.5
        assert comparison.per_unit_spatial[UnitKind.SQRT] > 0.9
