"""Tests for the sharded process-pool measurement engine."""

import dataclasses
import os
import time

import pytest

from repro.analysis.multirun import measure_with_seeds
from repro.analysis.parallel import (
    EngineReport,
    ShardRecord,
    resolve_jobs,
    run_sharded,
)
from repro.analysis.sweep import threshold_sweep
from repro.errors import ConfigError, ParallelExecutionError, ReproError
from repro.kernels.registry import KERNEL_REGISTRY

HAAR = KERNEL_REGISTRY["Haar"].default_factory


# Pool workers must be module-level so they pickle by reference.
def double(task):
    return task * 2


def raise_value_error(task):
    raise ValueError(f"boom on {task}")


def raise_repro_error(task):
    raise ReproError("domain failure")


def crash_process(task):
    os._exit(13)


def sleep_for(task):
    time.sleep(task)
    return task


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)


class TestSerialPath:
    def test_results_in_task_order(self):
        results, report = run_sharded([3, 1, 2], double, jobs=1)
        assert results == [6, 2, 4]
        assert report.serial
        assert report.workers == 1
        assert report.start_method == "in-process"
        assert [s.label for s in report.shards] == ["3", "1", "2"]

    def test_failure_names_shard(self):
        with pytest.raises(ParallelExecutionError, match="shard seed 1"):
            run_sharded(
                [1], raise_value_error, jobs=1, label=lambda t: f"seed {t}"
            )

    def test_domain_errors_propagate_unwrapped(self):
        with pytest.raises(ReproError, match="domain failure"):
            run_sharded([1], raise_repro_error, jobs=1)

    def test_empty_task_list(self):
        results, report = run_sharded([], double, jobs=4)
        assert results == []
        assert report.shard_count == 0


class TestPoolPath:
    def test_results_match_serial_in_order(self):
        serial, _ = run_sharded(list(range(8)), double, jobs=1)
        parallel, report = run_sharded(list(range(8)), double, jobs=2)
        assert parallel == serial
        assert not report.serial
        assert report.workers == 2
        assert report.shard_count == 8

    def test_workers_capped_by_task_count(self):
        _, report = run_sharded([1], double, jobs=8)
        # A single task never pays for a pool.
        assert report.workers == 1 and report.serial

    def test_unpicklable_worker_rejected_up_front(self):
        # Two tasks: a single task takes the serial fallback, which has
        # no pickling requirement.
        with pytest.raises(ParallelExecutionError, match="not picklable"):
            run_sharded([1, 2], lambda t: t, jobs=2)

    def test_unpicklable_task_names_shard(self):
        tasks = [1, lambda: None]
        with pytest.raises(ParallelExecutionError, match="unpicklable"):
            run_sharded(tasks, double, jobs=2, label=lambda t: "t")

    def test_crashed_worker_names_shard(self):
        with pytest.raises(ParallelExecutionError, match="shard seed 9"):
            run_sharded(
                [9, 10], crash_process, jobs=2, label=lambda t: f"seed {t}"
            )

    def test_timeout_names_shard(self):
        with pytest.raises(ParallelExecutionError, match="timeout"):
            run_sharded([30.0, 30.0], sleep_for, jobs=2, timeout=0.2)

    def test_worker_exception_names_shard(self):
        with pytest.raises(ParallelExecutionError, match="shard 5 failed"):
            run_sharded([5, 6], raise_value_error, jobs=2, label=str)


class TestEngineReport:
    def test_snapshot_metrics(self):
        report = EngineReport(
            requested_jobs=2,
            workers=2,
            serial=False,
            start_method="fork",
            shards=[ShardRecord("seed 1", 0.2), ShardRecord("seed 2", 0.3)],
        )
        snapshot = report.snapshot().to_dict()
        assert snapshot["counters"]["parallel.shards"] == 2
        assert snapshot["gauges"]["parallel.workers"] == 2.0
        assert snapshot["counters"]["parallel.serial_fallbacks"] == 0
        wall = snapshot["histograms"]["parallel.shard_wall_time_s"]
        assert wall["count"] == 2
        assert wall["total"] == pytest.approx(0.5)

    def test_to_dict_round_trip(self):
        _, report = run_sharded([1, 2], double, jobs=1)
        as_dict = report.to_dict()
        assert as_dict["shard_count"] == 2
        assert len(as_dict["shards"]) == 2
        assert as_dict["total_shard_wall_s"] == pytest.approx(
            report.total_shard_wall_s
        )


class TestDeterminism:
    def test_multiseed_parallel_identical_to_serial(self):
        serial = measure_with_seeds(
            HAAR, 0.01, 0.02, seeds=(1, 2, 3, 4),
            collect_telemetry=True, jobs=1,
        )
        parallel = measure_with_seeds(
            HAAR, 0.01, 0.02, seeds=(1, 2, 3, 4),
            collect_telemetry=True, jobs=4,
        )
        assert serial.saving == parallel.saving
        assert serial.hit_rate == parallel.hit_rate
        assert serial.telemetry.to_dict() == parallel.telemetry.to_dict()
        assert serial.counters == parallel.counters
        assert serial.lut_stats == parallel.lut_stats
        assert serial.ecu_stats == parallel.ecu_stats
        assert not parallel.engine.serial
        assert parallel.engine.workers == 4

    def test_determinism_spawn_two_workers(self):
        # The spawn start method (macOS/Windows default) re-imports every
        # module in the child, so this also proves the task specs and the
        # registry factories are genuinely picklable.
        serial = measure_with_seeds(HAAR, 0.01, 0.0, seeds=(1, 2), jobs=1)
        spawned = measure_with_seeds(
            HAAR, 0.01, 0.0, seeds=(1, 2), jobs=2, start_method="spawn"
        )
        assert dataclasses.asdict(serial.saving) == dataclasses.asdict(
            spawned.saving
        )
        assert dataclasses.asdict(serial.hit_rate) == dataclasses.asdict(
            spawned.hit_rate
        )
        assert spawned.engine.start_method == "spawn"

    def test_sweep_parallel_identical_to_serial(self):
        serial = threshold_sweep(HAAR, [0.0, 0.05], jobs=1)
        parallel = threshold_sweep(HAAR, [0.0, 0.05], jobs=2)
        assert serial == parallel
