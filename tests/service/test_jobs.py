"""Tests for the service job manager: dedup, quotas, byte identity.

These drive :class:`~repro.service.jobs.JobManager` directly on a
private event loop — the HTTP layer is exercised separately in
``test_http.py``.
"""

import asyncio
import json

import pytest

from repro.campaign.runner import (
    merge_campaign,
    read_campaign_manifest,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import CampaignError, QuotaExceeded, ServiceError
from repro.monitor.delta import ShardDeltaFold, fold_shard_views
from repro.monitor.events import MonitorEventKind
from repro.service import JobManager, TenantQuota

SPEC = {
    "name": "svc-camp",
    "kernels": ["Haar"],
    "error_rates": [0.0],
    "seeds": [1, 2],
}

OVERLAPPING = {
    "name": "svc-camp-b",
    "kernels": ["Haar"],
    "error_rates": [0.0],
    "seeds": [2, 3],  # seed 2 shared with SPEC
}


def make_manager(tmp_path, **kwargs):
    return JobManager(ResultStore(str(tmp_path / "store")), **kwargs)


async def wait_job(job, timeout=120.0):
    await asyncio.wait_for(asyncio.shield(job.task), timeout)
    return job


class TestLifecycle:
    def test_submit_runs_to_completion(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(dict(SPEC))
            assert job.status == "running"
            assert job.total == 2
            await wait_job(job)
            return manager, job

        manager, job = asyncio.run(scenario())
        assert job.status == "complete"
        assert job.completed_shards == 2
        assert job.result_text is not None
        counters = manager.counter_values()
        assert counters["service.submitted"] == 1
        assert counters["service.completed"] == 1
        assert counters["service.shards.executed"] == 2

    def test_result_bytes_match_direct_campaign_run(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(dict(SPEC))
            await wait_job(job)
            return job.result_text

        service_text = asyncio.run(scenario())

        direct_store = ResultStore(str(tmp_path / "direct"))
        spec = CampaignSpec.from_dict(SPEC)
        run_campaign(spec, direct_store)
        direct_text = merge_campaign(spec, direct_store).to_json()
        assert service_text == direct_text

    def test_second_submit_is_fully_cached(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            await wait_job(manager.submit(dict(SPEC)))
            job = manager.submit(dict(SPEC))
            assert job.cached == 2  # planned entirely from the store
            await wait_job(job)
            return manager, job

        manager, job = asyncio.run(scenario())
        assert job.status == "complete"
        assert manager.counter_values()["service.shards.executed"] == 2

    def test_malformed_spec_raises_campaign_error(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            with pytest.raises(CampaignError):
                manager.submit({"name": "x", "kernels": ["NoSuchKernel"]})

        asyncio.run(scenario())

    def test_unknown_job_raises(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            with pytest.raises(ServiceError, match="unknown job"):
                manager.job("job-9999")

        asyncio.run(scenario())


class TestDedup:
    def test_overlapping_jobs_share_inflight_shards(self, tmp_path):
        """Two jobs overlapping on one shard: it is computed exactly once."""

        async def scenario():
            manager = make_manager(tmp_path)
            # Submitted in the same loop tick: job A's executions are
            # scheduled before job B plans, so B attaches to A's shard.
            job_a = manager.submit(dict(SPEC))
            job_b = manager.submit(dict(OVERLAPPING))
            await wait_job(job_a)
            await wait_job(job_b)
            return manager, job_a, job_b

        manager, job_a, job_b = asyncio.run(scenario())
        assert job_a.status == "complete"
        assert job_b.status == "complete"
        assert job_a.deduped == 0
        assert job_b.deduped == 1  # seed 2 attached to job A's execution
        counters = manager.counter_values()
        assert counters["service.deduped"] == 1
        # three unique shards overall -> exactly three store writes
        assert counters["service.shards.executed"] == 3
        assert manager.store.counter_values()["write"] == 3

    def test_deduped_job_still_merges_byte_identically(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            manager.submit(dict(SPEC))
            job_b = manager.submit(dict(OVERLAPPING))
            await wait_job(job_b)
            return job_b.result_text

        service_text = asyncio.run(scenario())
        direct_store = ResultStore(str(tmp_path / "direct"))
        spec = CampaignSpec.from_dict(OVERLAPPING)
        run_campaign(spec, direct_store)
        assert service_text == merge_campaign(spec, direct_store).to_json()


class TestQuotas:
    def test_inflight_quota_rejects_then_admits_after_drain(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path,
                quota=TenantQuota(max_inflight_shards=2, retry_after_s=2.0),
            )
            job_a = manager.submit(dict(SPEC))  # 2 pending shards
            await asyncio.sleep(0)  # let the job schedule its executions
            with pytest.raises(QuotaExceeded) as excinfo:
                manager.submit(dict(OVERLAPPING))  # would add 2 more
            assert excinfo.value.retry_after_s == 2.0
            await wait_job(job_a)
            # capacity freed: the retry is admitted
            job_b = manager.submit(dict(OVERLAPPING))
            await wait_job(job_b)
            return manager, job_b

        manager, job_b = asyncio.run(scenario())
        assert job_b.status == "complete"
        counters = manager.counter_values()
        assert counters["service.rejected"] == 1
        assert counters["service.submitted"] == 2

    def test_byte_quota_rejects_then_admits_after_gc(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job_a = manager.submit(dict(SPEC))
            await wait_job(job_a)
            used = manager.tenant_bytes("default")
            assert used > 0
            # Budget below used + the estimated cost of one more shard.
            manager.quota = TenantQuota(max_store_bytes=int(used * 1.2))
            with pytest.raises(QuotaExceeded, match="budget"):
                manager.submit(dict(OVERLAPPING))
            # gc everything: attributed bytes drop to zero.
            report = manager.gc(max_bytes=0)
            assert report.removed == 2
            assert manager.tenant_bytes("default") == 0
            job_b = manager.submit(dict(OVERLAPPING))
            await wait_job(job_b)
            return manager, job_b

        manager, job_b = asyncio.run(scenario())
        assert job_b.status == "complete"
        assert manager.counter_values()["service.rejected"] == 1

    def test_tenants_are_accounted_separately(self, tmp_path):
        async def scenario():
            manager = make_manager(
                tmp_path, quota=TenantQuota(max_inflight_shards=2)
            )
            job_a = manager.submit(dict(SPEC), tenant="alice")
            await asyncio.sleep(0)
            # bob's quota is untouched by alice's in-flight shards
            job_b = manager.submit(dict(OVERLAPPING), tenant="bob")
            await wait_job(job_a)
            await wait_job(job_b)
            return manager

        manager = asyncio.run(scenario())
        assert manager.tenant_bytes("alice") > 0
        # bob only paid for his non-overlapping shard (seed 3); the
        # shared seed-2 blob is attributed to alice, who scheduled it.
        assert manager.tenant_bytes("bob") > 0
        capacity = manager.capacity()
        assert set(capacity["tenants"]) == {"alice", "bob"}


class TestEvents:
    def test_event_stream_replays_in_order_for_finished_job(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(dict(SPEC))
            await wait_job(job)
            events = []
            async for event in manager.job_events(job.job_id):
                events.append(event)
            return events

        events = asyncio.run(scenario())
        kinds = [event.kind for event in events]
        assert kinds.count(MonitorEventKind.SHARD_STARTED) == 2
        assert kinds.count(MonitorEventKind.SHARD_FINISHED) == 2
        assert kinds[-1] == MonitorEventKind.RUN_FINISHED
        assert [event.seq for event in events] == list(range(len(events)))

    def test_live_subscriber_sees_the_same_stream_as_replay(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(dict(SPEC))

            async def collect():
                return [e async for e in manager.job_events(job.job_id)]

            live_task = asyncio.ensure_future(collect())
            await wait_job(job)
            live = await asyncio.wait_for(live_task, 30)
            replay = [e async for e in manager.job_events(job.job_id)]
            return live, replay

        live, replay = asyncio.run(scenario())
        assert [e.to_dict() for e in live] == [e.to_dict() for e in replay]

    def test_snapshot_deltas_fold_to_the_merged_telemetry(self, tmp_path):
        spec_data = dict(SPEC, collect_telemetry=True)

        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(spec_data)
            await wait_job(job)
            return job

        job = asyncio.run(scenario())
        deltas = [
            event
            for event in job.events
            if event.kind == MonitorEventKind.SNAPSHOT_DELTA
        ]
        assert len(deltas) == 2  # one sealed delta per telemetry shard
        folds = []
        for event in deltas:
            fold = ShardDeltaFold()
            assert fold.apply(event.payload["delta"])
            folds.append(fold)
        merged = fold_shard_views(folds)
        assert merged is not None
        # The folded stream view equals the merged result's telemetry
        # (deltas elide zero increments, so compare the moving counters).
        result = json.loads(job.result_text)
        nonzero = {
            path: value
            for path, value in result["telemetry"]["counters"].items()
            if value
        }
        assert nonzero == merged.counters


class TestShutdownResume:
    def test_shutdown_mid_campaign_then_cli_resume_is_byte_identical(
        self, tmp_path
    ):
        spec_data = {
            "name": "svc-interrupted",
            "kernels": ["Haar"],
            "error_rates": [0.0, 0.02, 0.04],
            "seeds": [1, 2, 3, 4],
        }
        store_dir = str(tmp_path / "store")

        async def scenario():
            manager = JobManager(ResultStore(store_dir))
            job = manager.submit(dict(spec_data))
            while job.completed_shards < 1 and not job.is_done:
                await asyncio.sleep(0.001)
            await manager.shutdown()
            return job

        job = asyncio.run(scenario())
        assert job.status == "cancelled"
        assert job.completed_shards < job.total

        spec = CampaignSpec.from_dict(spec_data)
        store = ResultStore(store_dir)
        manifest = read_campaign_manifest(store, spec)
        assert manifest is not None
        assert manifest["status"] == "partial"
        assert manifest["completed"] == job.completed_shards

        # The standard CLI resume path completes the campaign...
        report = run_campaign(spec, store)
        assert report.complete
        assert report.cached == job.completed_shards
        resumed_text = merge_campaign(spec, store).to_json()

        # ...byte-identically to a never-interrupted run.
        fresh_store = ResultStore(str(tmp_path / "fresh"))
        run_campaign(spec, fresh_store)
        assert resumed_text == merge_campaign(spec, fresh_store).to_json()

    def test_submit_after_shutdown_is_refused(self, tmp_path):
        async def scenario():
            manager = make_manager(tmp_path)
            await manager.shutdown()
            with pytest.raises(ServiceError, match="shutting down"):
                manager.submit(dict(SPEC))

        asyncio.run(scenario())
