"""Tests for the service CLI: ``repro submit``, ``repro jobs``, serve.

``submit`` and ``jobs`` run in-process against a
:class:`~repro.service.server.ServiceThread`; the full ``repro serve``
process lifecycle (SIGTERM shutdown included) runs once as a subprocess
round trip.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.service import JobManager, ServiceThread
from repro.utils.io import read_jsonl_records


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def spec_file(tmp_path):
    spec = CampaignSpec(
        name="svc-cli", kernels=("Haar",), error_rates=(0.0,), seeds=(1, 2)
    )
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    return path


@pytest.fixture
def service(tmp_path):
    manager = JobManager(ResultStore(str(tmp_path / "svc-store")))
    with ServiceThread(manager) as thread:
        yield thread


class TestSubmitCommand:
    def test_submit_wait_writes_events_and_result(
        self, tmp_path, spec_file, service
    ):
        events = str(tmp_path / "events.jsonl")
        result = str(tmp_path / "result.json")
        code, text = run_cli(
            "submit", str(spec_file), "--url", service.url,
            "--events", events, "--result", result,
        )
        assert code == 0
        assert "complete" in text
        assert "merged result written" in text

        records = read_jsonl_records(events)
        assert records[0]["type"] == "service-manifest"
        kinds = [r.get("kind") for r in records if r.get("type") == "event"]
        assert kinds[-1] == "run_finished"

        document = json.loads(open(result).read())
        assert document["name"] == "svc-cli"

        # the streamed result equals a direct CLI run on a fresh store
        direct = str(tmp_path / "direct.json")
        code, _ = run_cli(
            "campaign", "run", str(spec_file),
            "--cache-dir", str(tmp_path / "direct-store"),
            "--result", direct,
        )
        assert code == 0
        assert open(result, "rb").read() == open(direct, "rb").read()

    def test_fire_and_forget_submit_prints_job_id(self, spec_file, service):
        code, text = run_cli("submit", str(spec_file), "--url", service.url)
        assert code == 0
        assert "submitted job-0001" in text

    def test_submit_json_emits_final_job_document(self, spec_file, service):
        code, text = run_cli(
            "submit", str(spec_file), "--url", service.url, "--wait", "--json"
        )
        assert code == 0
        document = json.loads(text)
        assert document["status"] == "complete"
        assert document["completed_shards"] == 2

    def test_submit_against_dead_service_reports_error(self, spec_file):
        code, text = run_cli(
            "submit", str(spec_file), "--url", "http://127.0.0.1:9"
        )
        assert code == 1
        assert "error:" in text


class TestJobsCommand:
    def test_jobs_table_and_json(self, spec_file, service):
        code, text = run_cli("jobs", "--url", service.url)
        assert code == 0
        assert "no jobs" in text

        code, _ = run_cli(
            "submit", str(spec_file), "--url", service.url, "--wait"
        )
        assert code == 0

        code, text = run_cli("jobs", "--url", service.url)
        assert code == 0
        assert "job-0001" in text and "complete" in text

        code, text = run_cli("jobs", "--url", service.url, "--json")
        assert code == 0
        document = json.loads(text)
        assert document["kind"] == "service.jobs"
        assert document["jobs"][0]["job_id"] == "job-0001"


class TestServeProcess:
    def test_serve_submit_sigterm_round_trip(self, tmp_path, spec_file):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        log = open(tmp_path / "serve.log", "w")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", str(tmp_path / "store"),
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
        try:
            url = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                text = (tmp_path / "serve.log").read_text()
                if "listening on " in text:
                    url = text.split("listening on ", 1)[1].splitlines()[0]
                    break
                time.sleep(0.1)
            assert url, "serve never reported its URL"

            code, text = run_cli(
                "submit", str(spec_file), "--url", url, "--wait"
            )
            assert code == 0
            assert "complete" in text
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            log.close()
