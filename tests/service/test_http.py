"""HTTP-level tests: real sockets, concurrent clients, wire behavior.

Each test runs a :class:`~repro.service.server.ServiceThread` (private
event loop in a daemon thread, ephemeral port) and talks to it with the
stdlib :class:`~repro.service.client.ServiceClient` — the same harness
the overhead benchmark uses.
"""

import json
import threading

import pytest

from repro.campaign.runner import merge_campaign, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import QuotaExceeded, ServiceError
from repro.service import (
    JobManager,
    ServiceClient,
    ServiceThread,
    TenantQuota,
)

SPEC = {
    "name": "http-camp",
    "kernels": ["Haar"],
    "error_rates": [0.0],
    "seeds": [1, 2, 3],
}

OVERLAPPING = {
    "name": "http-camp-b",
    "kernels": ["Haar"],
    "error_rates": [0.0],
    "seeds": [2, 3, 4],  # seeds 2 and 3 shared with SPEC
}


@pytest.fixture
def manager(tmp_path):
    return JobManager(ResultStore(str(tmp_path / "store")))


class TestEndToEnd:
    def test_submit_wait_result_byte_identical_to_direct_run(
        self, tmp_path, manager
    ):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            assert client.healthz()["status"] == "ok"
            job = client.submit(dict(SPEC))
            assert job["status"] in ("running", "complete")
            final = client.wait(job["job_id"])
            assert final["status"] == "complete"
            assert final["completed_shards"] == 3
            service_bytes = client.result_bytes(job["job_id"])

        direct_store = ResultStore(str(tmp_path / "direct"))
        spec = CampaignSpec.from_dict(SPEC)
        run_campaign(spec, direct_store)
        direct_bytes = merge_campaign(spec, direct_store).to_json().encode()
        assert service_bytes == direct_bytes

    def test_event_stream_has_header_then_events(self, manager):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            job = client.submit(dict(SPEC))
            records = list(client.stream_events(job["job_id"]))
        assert records[0][0] == "service-manifest"
        assert records[0][1]["job"]["job_id"] == job["job_id"]
        events = [record for kind, record in records if kind == "event"]
        assert [event["seq"] for event in events] == list(range(len(events)))
        assert events[-1]["kind"] == "run_finished"

    def test_result_before_completion_conflicts(self, manager):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            job = client.submit(dict(SPEC))
            try:
                client.result_bytes(job["job_id"])
            except ServiceError as exc:
                assert "409" in str(exc)
            else:  # the tiny campaign may legitimately finish first
                assert client.job(job["job_id"])["status"] == "complete"

    def test_jobs_listing_and_metrics(self, manager):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url, tenant="tester")
            job = client.submit(dict(SPEC))
            client.wait(job["job_id"])
            jobs = client.jobs()
            assert len(jobs) == 1
            assert jobs[0]["tenant"] == "tester"
            metrics = client.metrics()
            assert metrics["counters"]["service.submitted"] == 1
            assert metrics["counters"]["service.completed"] == 1
            assert metrics["store"]["write"] == 3

    def test_capacity_and_gc_endpoints(self, manager):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            job = client.submit(dict(SPEC))
            client.wait(job["job_id"])
            capacity = client.capacity()
            assert capacity["stats"]["entries"] == 3
            assert capacity["tenants"]["default"]["bytes"] > 0
            # dry run: reports candidates, removes nothing
            preview = client.gc(max_bytes=0, dry_run=True)["report"]
            assert preview["dry_run"] is True
            assert preview["removed"] == 3
            assert len(preview["removed_entries"]) == 3
            assert client.capacity()["stats"]["entries"] == 3
            # real pass: store drained, tenant budget credited back
            report = client.gc(max_bytes=0)["report"]
            assert report["removed"] == 3
            capacity = client.capacity()
            assert capacity["stats"]["entries"] == 0
            assert capacity["tenants"]["default"]["bytes"] == 0

    def test_unknown_routes_and_jobs(self, manager):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError, match="404"):
                client.job("job-9999")
            with pytest.raises(ServiceError, match="404"):
                client._request("GET", "/v2/nope")
            with pytest.raises(ServiceError, match="405"):
                client._request("POST", "/v1/jobs", body={})

    def test_malformed_spec_is_a_400(self, manager):
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError, match="400"):
                client.submit({"name": "x", "kernels": ["NoSuchKernel"]})


class TestConcurrentClients:
    def test_overlapping_clients_compute_each_shared_shard_once(
        self, manager
    ):
        """Two clients, overlapping specs: shared shards run once."""
        results = {}

        def submit(name, spec, tenant, url):
            client = ServiceClient(url, tenant=tenant)
            job = client.submit(dict(spec))
            results[name] = client.wait(job["job_id"])

        with ServiceThread(manager) as service:
            threads = [
                threading.Thread(
                    target=submit, args=("a", SPEC, "alice", service.url)
                ),
                threading.Thread(
                    target=submit,
                    args=("b", OVERLAPPING, "bob", service.url),
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            metrics = ServiceClient(service.url).metrics()

        assert results["a"]["status"] == "complete"
        assert results["b"]["status"] == "complete"
        counters = metrics["counters"]
        # 4 unique shards across both specs: every one computed exactly
        # once no matter how the two submissions interleaved.
        assert counters["service.shards.executed"] == 4
        assert metrics["store"]["write"] == 4
        # and any overlap that was in flight at plan time was attached,
        # not re-executed
        executed_plus_cached = counters["service.shards.executed"] + counters.get(
            "service.shards.cached", 0
        )
        deduped = counters.get("service.deduped", 0)
        assert executed_plus_cached + deduped == 6  # 3 shards per job

    def test_back_to_back_submits_dedupe_inflight_shards(self, manager):
        """Sequential submits while shards are in flight: dedup > 0."""
        with ServiceThread(manager) as service:
            client_a = ServiceClient(service.url, tenant="alice")
            client_b = ServiceClient(service.url, tenant="bob")
            job_a = client_a.submit(dict(SPEC))
            job_b = client_b.submit(dict(OVERLAPPING))
            client_a.wait(job_a["job_id"])
            final_b = client_b.wait(job_b["job_id"])
            metrics = ServiceClient(service.url).metrics()
        assert final_b["deduped"] == 2  # seeds 2 and 3 attached to job A
        assert metrics["counters"]["service.deduped"] == 2
        assert metrics["counters"]["service.shards.executed"] == 4
        assert metrics["store"]["write"] == 4


class TestQuotaBackpressure:
    def test_quota_rejection_is_429_and_retry_succeeds(self, tmp_path):
        manager = JobManager(
            ResultStore(str(tmp_path / "store")),
            quota=TenantQuota(max_inflight_shards=3, retry_after_s=2.0),
        )
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url, tenant="alice")
            job_a = client.submit(dict(SPEC))  # occupies all 3 slots
            with pytest.raises(QuotaExceeded) as excinfo:
                client.submit(dict(OVERLAPPING))
            assert excinfo.value.retry_after_s == 2.0
            # capacity frees once the first job drains; the retry lands
            client.wait(job_a["job_id"])
            job_b = client.submit(dict(OVERLAPPING))
            final = client.wait(job_b["job_id"])
            metrics = ServiceClient(service.url).metrics()
        assert final["status"] == "complete"
        assert metrics["counters"]["service.rejected"] == 1
        assert metrics["counters"]["service.submitted"] == 2

    def test_429_carries_retry_after_header(self, tmp_path):
        import http.client

        manager = JobManager(
            ResultStore(str(tmp_path / "store")),
            quota=TenantQuota(max_inflight_shards=1, retry_after_s=7.0),
        )
        with ServiceThread(manager) as service:
            client = ServiceClient(service.url)
            client.submit(dict(SPEC, seeds=[1]))  # fills the only slot
            connection = http.client.HTTPConnection(
                client.host, client.port, timeout=30
            )
            try:
                connection.request(
                    "POST",
                    "/v1/campaigns",
                    body=json.dumps(OVERLAPPING).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 429
                assert response.getheader("Retry-After") == "7"
                body = json.loads(response.read())
                assert body["error"]["retry_after_s"] == 7.0
            finally:
                connection.close()
