"""Tests for the service wire documents and stream codecs."""

import json

import pytest

from repro.errors import QuotaExceeded, ServiceError
from repro.monitor.events import (
    MONITOR_STREAM_SCHEMA,
    MonitorEvent,
    MonitorEventKind,
)
from repro.service.wire import (
    SERVICE_SCHEMA,
    decode_event_line,
    encode_event_line,
    error_document,
    parse_json_body,
    raise_for_error,
    stream_header_record,
    validate_job_document,
)


class TestErrorDocuments:
    def test_error_document_shape(self):
        document = error_document(400, "bad spec")
        assert document == {
            "error": {
                "schema": SERVICE_SCHEMA,
                "status": 400,
                "message": "bad spec",
            }
        }

    def test_retry_after_included_when_given(self):
        document = error_document(429, "busy", retry_after_s=2.5)
        assert document["error"]["retry_after_s"] == 2.5

    def test_raise_for_error_429_maps_to_quota_exceeded(self):
        body = json.dumps(error_document(429, "busy", retry_after_s=3.0))
        with pytest.raises(QuotaExceeded) as excinfo:
            raise_for_error(429, body.encode())
        assert excinfo.value.retry_after_s == 3.0
        assert "busy" in str(excinfo.value)

    def test_raise_for_error_other_statuses_map_to_service_error(self):
        body = json.dumps(error_document(404, "no such job"))
        with pytest.raises(ServiceError, match="no such job"):
            raise_for_error(404, body.encode())

    def test_raise_for_error_survives_garbage_bodies(self):
        with pytest.raises(ServiceError, match="HTTP 500"):
            raise_for_error(500, b"<html>oops</html>")
        with pytest.raises(QuotaExceeded) as excinfo:
            raise_for_error(429, b"not json")
        assert excinfo.value.retry_after_s == 1.0


class TestBodyParsing:
    def test_parse_json_body_roundtrip(self):
        assert parse_json_body(b'{"a": 1}', "spec") == {"a": 1}

    def test_parse_json_body_rejects_non_objects(self):
        with pytest.raises(ServiceError, match="must be a JSON object"):
            parse_json_body(b"[1, 2]", "spec")

    def test_parse_json_body_rejects_garbage(self):
        with pytest.raises(ServiceError, match="not valid JSON"):
            parse_json_body(b"{truncated", "spec")


class TestEventLines:
    def test_monitor_event_line_matches_stream_writer_format(self):
        event = MonitorEvent(
            seq=3,
            ts_s=1.25,
            kind=MonitorEventKind.SHARD_FINISHED,
            shard="Haar rate=0 seed=1",
            payload={"wall_s": 0.5},
        )
        line = encode_event_line(event)
        assert line.endswith("\n")
        record = json.loads(line)
        assert record["schema"] == MONITOR_STREAM_SCHEMA
        assert record["type"] == "event"
        assert record["kind"] == "shard_finished"
        assert record["seq"] == 3

    def test_decode_event_line_roundtrip(self):
        event = MonitorEvent(
            seq=0, ts_s=0.0, kind=MonitorEventKind.RUN_FINISHED
        )
        record_type, record = decode_event_line(encode_event_line(event))
        assert record_type == "event"
        assert record["kind"] == "run_finished"

    def test_decode_blank_line_is_none(self):
        assert decode_event_line("") is None
        assert decode_event_line("   \n") is None

    def test_decode_malformed_line_raises(self):
        with pytest.raises(ServiceError, match="malformed"):
            decode_event_line("{torn")
        with pytest.raises(ServiceError, match="not a JSON object"):
            decode_event_line("[1]")

    def test_stream_header_record(self):
        header = stream_header_record({"job_id": "job-0001"})
        assert header["type"] == "service-manifest"
        assert header["schema"] == MONITOR_STREAM_SCHEMA
        assert header["job"]["job_id"] == "job-0001"


class TestJobDocuments:
    def test_validate_accepts_complete_document(self):
        document = {
            "schema": SERVICE_SCHEMA,
            "job_id": "job-0001",
            "status": "running",
            "total": 4,
        }
        assert validate_job_document(document) is document

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(ServiceError, match="missing field 'status'"):
            validate_job_document(
                {"schema": SERVICE_SCHEMA, "job_id": "x", "total": 1}
            )

    def test_validate_rejects_foreign_schema(self):
        with pytest.raises(ServiceError, match="schema 99"):
            validate_job_document(
                {"schema": 99, "job_id": "x", "status": "running", "total": 1}
            )
