"""Shared fixtures for the test suite."""

import pytest

from repro.config import ArchConfig, MemoConfig, SimConfig, TimingConfig
from repro.isa.opcodes import opcode_by_mnemonic


@pytest.fixture
def tiny_arch() -> ArchConfig:
    """A 1-CU, 4-lane, 8-item-wavefront device for fast tests."""
    return ArchConfig(
        num_compute_units=1,
        stream_cores_per_cu=4,
        wavefront_size=8,
    )


@pytest.fixture
def tiny_sim(tiny_arch) -> SimConfig:
    return SimConfig(arch=tiny_arch, memo=MemoConfig(), timing=TimingConfig())


@pytest.fixture
def add_op():
    return opcode_by_mnemonic("ADD")


@pytest.fixture
def sub_op():
    return opcode_by_mnemonic("SUB")


@pytest.fixture
def mul_op():
    return opcode_by_mnemonic("MUL")


@pytest.fixture
def muladd_op():
    return opcode_by_mnemonic("MULADD")


@pytest.fixture
def sqrt_op():
    return opcode_by_mnemonic("SQRT")


@pytest.fixture
def recip_op():
    return opcode_by_mnemonic("RECIP")
