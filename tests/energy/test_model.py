"""Tests for the energy model."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.errors import EnergyModelError
from repro.fpu.units import UNIT_SPECS
from repro.isa.opcodes import UnitKind
from repro.memo.lut import LutStats
from repro.memo.resilient import FpuEventCounters


def miss_counters(ops, depth=4):
    """Counters for `ops` plain executions with no hits or errors."""
    return FpuEventCounters(
        ops=ops,
        issue_cycles=ops,
        active_stage_traversals=ops * depth,
    )


def hit_counters(ops, depth=4):
    """Counters for `ops` all-hit executions."""
    return FpuEventCounters(
        ops=ops,
        issue_cycles=ops,
        active_stage_traversals=ops,
        gated_stage_traversals=ops * (depth - 1),
    )


class TestBreakdown:
    def test_total_is_sum_of_parts(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert b.total_pj == 21.0

    def test_fpu_excludes_memo(self):
        b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert b.fpu_pj == 15.0

    def test_add_accumulates(self):
        a = EnergyBreakdown(datapath_pj=1.0)
        a.add(EnergyBreakdown(datapath_pj=2.0, memo_pj=1.0))
        assert a.datapath_pj == 3.0
        assert a.memo_pj == 1.0


class TestUnitEnergy:
    def test_plain_op_energy_close_to_spec(self):
        model = EnergyModel()
        breakdown = model.unit_energy(UnitKind.ADD, miss_counters(1000))
        per_op = breakdown.total_pj / 1000
        spec = UNIT_SPECS[UnitKind.ADD].energy_per_op_pj
        # datapath + control = spec; leakage adds a small extra.
        assert spec <= per_op <= spec * 1.1

    def test_hit_cheaper_than_miss(self):
        model = EnergyModel()
        lut = LutStats(lookups=100, hits=100)
        hit = model.unit_energy(UnitKind.ADD, hit_counters(100), lut)
        miss = model.unit_energy(UnitKind.ADD, miss_counters(100))
        assert hit.total_pj < miss.total_pj

    def test_hit_saving_fraction_is_calibrated(self):
        """Per-hit saving must be ~55% of a full op (see EnergyParams)."""
        model = EnergyModel()
        lut = LutStats(lookups=1000, hits=1000)
        hit = model.unit_energy(UnitKind.MUL, hit_counters(1000), lut)
        miss = model.unit_energy(UnitKind.MUL, miss_counters(1000))
        saving = 1.0 - hit.total_pj / miss.total_pj
        assert 0.4 < saving < 0.7

    def test_recovery_energy_dominates_errors(self):
        model = EnergyModel()
        counters = miss_counters(100)
        counters.errors_recovered = 10
        counters.recovery_stall_cycles = 120
        with_errors = model.unit_energy(UnitKind.ADD, counters)
        without = model.unit_energy(UnitKind.ADD, miss_counters(100))
        assert with_errors.recovery_pj > 0
        # 10 recoveries at ~25x op energy ~ 2500 op-equivalents extra.
        assert with_errors.total_pj > 2.0 * without.total_pj

    def test_memo_energy_zero_without_lut(self):
        model = EnergyModel()
        breakdown = model.unit_energy(UnitKind.ADD, miss_counters(10))
        assert breakdown.memo_pj == 0.0

    def test_memo_energy_counts_lookups_and_updates(self):
        model = EnergyModel()
        lut = LutStats(lookups=10, hits=0, updates=10)
        counters = miss_counters(10)
        breakdown = model.unit_energy(UnitKind.ADD, counters, lut)
        params = model.params
        expected = (
            10 * params.lut_lookup_pj
            + 10 * params.lut_update_pj
            + 10 * params.memo_clock_pj_per_cycle
        )
        assert breakdown.memo_pj == pytest.approx(expected)

    def test_leakage_scales_with_busy_cycles(self):
        model = EnergyModel()
        short = model.unit_energy(UnitKind.ADD, miss_counters(10))
        long = model.unit_energy(UnitKind.ADD, miss_counters(1000))
        assert long.leakage_pj > short.leakage_pj

    def test_deeper_pipeline_spreads_stage_energy(self):
        model = EnergyModel()
        shallow = model.unit_energy(
            UnitKind.RECIP, miss_counters(10, depth=16), pipeline_depth=16
        )
        # Per-op energy should still be ~spec regardless of depth.
        spec = UNIT_SPECS[UnitKind.RECIP].energy_per_op_pj
        assert shallow.datapath_pj + shallow.control_pj == pytest.approx(
            10 * spec, rel=0.01
        )


class TestVoltageScaling:
    def test_dynamic_energy_scales_quadratically(self):
        nominal = EnergyModel(fpu_voltage=0.9)
        scaled = EnergyModel(fpu_voltage=0.8)
        n = nominal.unit_energy(UnitKind.ADD, miss_counters(100))
        s = scaled.unit_energy(UnitKind.ADD, miss_counters(100))
        assert s.datapath_pj == pytest.approx(
            n.datapath_pj * (0.8 / 0.9) ** 2
        )

    def test_memo_module_voltage_is_pinned(self):
        nominal = EnergyModel(fpu_voltage=0.9)
        scaled = EnergyModel(fpu_voltage=0.8)
        lut = LutStats(lookups=100, hits=50, updates=50)
        n = nominal.unit_energy(UnitKind.ADD, hit_counters(100), lut)
        s = scaled.unit_energy(UnitKind.ADD, hit_counters(100), lut)
        assert s.memo_pj == pytest.approx(n.memo_pj)  # fixed 0.9 V module

    def test_leakage_scales_linearly(self):
        nominal = EnergyModel(fpu_voltage=0.9)
        scaled = EnergyModel(fpu_voltage=0.45)
        n = nominal.unit_energy(UnitKind.ADD, miss_counters(100))
        s = scaled.unit_energy(UnitKind.ADD, miss_counters(100))
        assert s.leakage_pj == pytest.approx(n.leakage_pj * 0.5)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(EnergyModelError):
            EnergyModel(fpu_voltage=0.0)


class TestAggregate:
    def test_aggregate_and_total(self):
        model = EnergyModel()
        per_unit = {
            UnitKind.ADD: miss_counters(10),
            UnitKind.MUL: miss_counters(20),
        }
        breakdowns = model.aggregate(per_unit)
        total = EnergyModel.total(breakdowns)
        assert total.total_pj == pytest.approx(
            breakdowns[UnitKind.ADD].total_pj + breakdowns[UnitKind.MUL].total_pj
        )

    def test_aggregate_with_lut_stats(self):
        model = EnergyModel()
        per_unit = {UnitKind.ADD: miss_counters(10)}
        luts = {UnitKind.ADD: LutStats(lookups=10)}
        breakdowns = model.aggregate(per_unit, luts)
        assert breakdowns[UnitKind.ADD].memo_pj > 0
