"""Tests for energy parameters, voltage scaling and reports."""

import pytest

from repro.energy.model import EnergyBreakdown
from repro.energy.params import EnergyParams
from repro.energy.report import EnergyReport, compare_energy, format_energy_report
from repro.energy.voltage_scaling import VoltageScaling
from repro.errors import EnergyModelError
from repro.isa.opcodes import UnitKind


class TestEnergyParams:
    def test_defaults_valid(self):
        EnergyParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"control_fraction": 1.0},
            {"control_fraction": -0.1},
            {"gated_stage_residual": 1.5},
            {"lut_lookup_pj": -1.0},
            {"recovery_activity_factor": 0.0},
            {"recovery_sc_idle_pj_per_cycle": -1.0},
            {"memo_voltage": 0.0},
            {"clock_period_ns": 0.0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(EnergyModelError):
            EnergyParams(**kwargs)

    def test_frozen(self):
        params = EnergyParams()
        with pytest.raises(Exception):
            params.control_fraction = 0.5


class TestVoltageScaling:
    def test_nominal_scale_is_unity(self):
        scaling = VoltageScaling()
        assert scaling.dynamic_scale(0.9) == pytest.approx(1.0)
        assert scaling.leakage_scale(0.9) == pytest.approx(1.0)

    def test_quadratic_vs_linear(self):
        scaling = VoltageScaling()
        assert scaling.dynamic_scale(0.45) == pytest.approx(0.25)
        assert scaling.leakage_scale(0.45) == pytest.approx(0.5)

    def test_invalid_voltage(self):
        with pytest.raises(EnergyModelError):
            VoltageScaling().dynamic_scale(0.0)
        with pytest.raises(EnergyModelError):
            VoltageScaling(nominal_voltage=0.0)


class TestEnergyReport:
    def _report(self, label, add_pj, mul_pj):
        return EnergyReport(
            label=label,
            voltage=0.9,
            per_unit={
                UnitKind.ADD: EnergyBreakdown(datapath_pj=add_pj),
                UnitKind.MUL: EnergyBreakdown(datapath_pj=mul_pj),
            },
        )

    def test_total(self):
        report = self._report("x", 10.0, 20.0)
        assert report.total_pj == 30.0

    def test_saving_vs_baseline(self):
        memo = self._report("memo", 10.0, 20.0)
        base = self._report("base", 20.0, 20.0)
        assert memo.saving_vs(base) == pytest.approx(0.25)
        assert compare_energy(memo, base) == pytest.approx(0.25)

    def test_zero_baseline_rejected(self):
        memo = self._report("memo", 10.0, 20.0)
        empty = EnergyReport("base", 0.9, {})
        with pytest.raises(EnergyModelError):
            memo.saving_vs(empty)

    def test_format_contains_units_and_total(self):
        memo = self._report("memoized", 10.0, 20.0)
        text = format_energy_report(memo)
        assert "ADD" in text and "MUL" in text and "TOTAL" in text
        assert "memoized" in text

    def test_format_with_baseline_has_saving_column(self):
        memo = self._report("memo", 10.0, 20.0)
        base = self._report("base", 20.0, 40.0)
        text = format_energy_report(memo, base)
        assert "saving %" in text
        assert "50" in text
