"""Tests for lockstep vs decoupling-queue SIMD models."""

import pytest

from repro.errors import TimingModelError
from repro.timing.decoupling import DecoupledSimdPipeline, LockstepSimdPipeline
from repro.timing.errors import BernoulliInjector, NoErrorInjector
from repro.utils.rng import RngStream


def injectors(lanes, rate=0.0, seed=1):
    if rate == 0.0:
        return [NoErrorInjector() for _ in range(lanes)]
    return [
        BernoulliInjector(rate, RngStream(seed, "lane", i)) for i in range(lanes)
    ]


class TestLockstep:
    def test_error_free_is_one_instruction_per_cycle(self):
        stats = LockstepSimdPipeline(16).run(100, injectors(16))
        assert stats.cycles == 100
        assert stats.lane_errors == 0
        assert stats.throughput == 16.0

    def test_any_lane_error_stalls_everyone(self):
        lanes = 4
        injs = [NoErrorInjector() for _ in range(lanes - 1)]
        injs.append(BernoulliInjector(1.0, RngStream(1)))
        stats = LockstepSimdPipeline(lanes, recovery_cycles=12).run(10, injs)
        assert stats.cycles == 10 + 10 * 12
        assert stats.global_stall_cycles == 120

    def test_simultaneous_errors_one_recovery(self):
        injs = [BernoulliInjector(1.0, RngStream(2, i)) for i in range(4)]
        stats = LockstepSimdPipeline(4, recovery_cycles=12).run(5, injs)
        assert stats.lane_errors == 20
        assert stats.cycles == 5 + 5 * 12  # one global recovery per slot

    def test_zero_instructions(self):
        stats = LockstepSimdPipeline(4).run(0, injectors(4))
        assert stats.cycles == 0
        assert stats.throughput == 0.0


class TestDecoupled:
    def test_error_free_matches_lockstep(self):
        stats = DecoupledSimdPipeline(16, queue_depth=4).run(100, injectors(16))
        assert stats.cycles == pytest.approx(101, abs=2)

    def test_independent_lane_errors_cheaper_when_decoupled(self):
        # Decoupling pays the max of the lanes' error burdens; lockstep
        # pays their union.  With several independently erring lanes the
        # decoupled pipeline must finish sooner.
        lanes, n, rate = 4, 200, 0.15
        lockstep = LockstepSimdPipeline(lanes, 12).run(
            n, injectors(lanes, rate, seed=3)
        )
        decoupled = DecoupledSimdPipeline(lanes, 8, 12).run(
            n, injectors(lanes, rate, seed=3)
        )
        assert decoupled.cycles < lockstep.cycles

    def test_single_erring_lane_is_the_critical_path(self):
        # With exactly one erring lane decoupling cannot beat that lane's
        # own serial time; it only avoids over-stalling the healthy lanes.
        lanes, n = 4, 100
        injs = [NoErrorInjector() for _ in range(lanes - 1)]
        injs.append(BernoulliInjector(1.0, RngStream(3)))
        decoupled = DecoupledSimdPipeline(lanes, 8, 12).run(n, injs)
        serial_bad_lane = n * (1 + 12)
        assert decoupled.cycles == pytest.approx(serial_bad_lane, abs=2)

    def test_deeper_queue_absorbs_more_slip(self):
        def run(depth):
            injs = [
                BernoulliInjector(0.05, RngStream(4, "l", i)) for i in range(8)
            ]
            return DecoupledSimdPipeline(8, depth, 12).run(300, injs)

        shallow = run(1)
        deep = run(16)
        assert deep.global_stall_cycles <= shallow.global_stall_cycles

    def test_overhead_ratio(self):
        injs = injectors(4)
        stats = DecoupledSimdPipeline(4, 4).run(100, injs)
        assert stats.overhead_ratio == pytest.approx(
            stats.cycles / 100 - 1.0
        )

    def test_invalid_parameters(self):
        with pytest.raises(TimingModelError):
            DecoupledSimdPipeline(4, queue_depth=0)
        with pytest.raises(TimingModelError):
            DecoupledSimdPipeline(0, queue_depth=4)
        with pytest.raises(TimingModelError):
            DecoupledSimdPipeline(4, 4).run(10, injectors(3))

    def test_zero_instructions(self):
        stats = DecoupledSimdPipeline(4, 4).run(0, injectors(4))
        assert stats.cycles == 0


class TestCrossModelComparison:
    def test_decoupling_wins_at_high_error_rates(self):
        """The motivation for [11]: decoupling beats lockstep under errors."""
        lanes, n, rate = 8, 400, 0.05

        lock = LockstepSimdPipeline(lanes, 12).run(n, injectors(lanes, rate, 7))
        dec = DecoupledSimdPipeline(lanes, 8, 12).run(
            n, injectors(lanes, rate, 7)
        )
        assert dec.cycles < lock.cycles
