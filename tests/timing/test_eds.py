"""Tests for the EDS sensor bank."""

import pytest

from repro.errors import TimingModelError
from repro.timing.eds import EdsBank, EdsObservation
from repro.utils.rng import RngStream


class TestEdsObservation:
    def test_error_requires_stage(self):
        with pytest.raises(TimingModelError):
            EdsObservation(error=True)

    def test_clean_observation_cannot_name_stage(self):
        with pytest.raises(TimingModelError):
            EdsObservation(error=False, stage=1)

    def test_valid_observations(self):
        assert EdsObservation(error=False).stage is None
        assert EdsObservation(error=True, stage=2).stage == 2


class TestEdsBank:
    def test_clean_pass_through(self):
        bank = EdsBank(4, RngStream(1))
        obs = bank.observe(False)
        assert not obs.error

    def test_error_attributed_to_valid_stage(self):
        bank = EdsBank(4, RngStream(2))
        for _ in range(100):
            obs = bank.observe(True)
            assert obs.error
            assert 0 <= obs.stage < 4

    def test_default_weights_favor_later_stages(self):
        bank = EdsBank(4, RngStream(3))
        stages = [bank.observe(True).stage for _ in range(4000)]
        counts = [stages.count(s) for s in range(4)]
        assert counts[3] > counts[0]

    def test_custom_weights(self):
        bank = EdsBank(3, RngStream(4), stage_weights=[1.0, 0.0, 0.0])
        stages = {bank.observe(True).stage for _ in range(50)}
        assert stages == {0}

    def test_weight_length_mismatch(self):
        with pytest.raises(TimingModelError):
            EdsBank(3, RngStream(5), stage_weights=[1.0, 2.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(TimingModelError):
            EdsBank(2, RngStream(6), stage_weights=[0.0, 0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(TimingModelError):
            EdsBank(2, RngStream(6), stage_weights=[1.0, -1.0])

    def test_zero_stage_bank_rejected(self):
        with pytest.raises(TimingModelError):
            EdsBank(0, RngStream(7))
