"""Tests for the fault-model zoo (:mod:`repro.timing.faults`)."""

import pytest

from repro.config import TimingConfig
from repro.errors import TimingModelError
from repro.timing.errors import (
    BernoulliInjector,
    NoErrorInjector,
    VoltageDrivenInjector,
    injector_for,
)
from repro.timing.faults import (
    FAULT_MODEL_KINDS,
    FaultModelSpec,
    GilbertElliottInjector,
    LutBitflipCorruptor,
    SpatialInjector,
    StuckAtInjector,
    corruptor_for,
    fault_model_identity,
    is_stuck,
    pvt_multiplier,
)
from repro.utils.rng import RngStream


class TestFaultModelSpec:
    def test_default_is_bernoulli(self):
        assert FaultModelSpec().kind == "bernoulli"

    def test_unknown_kind_rejected(self):
        with pytest.raises(TimingModelError):
            FaultModelSpec(kind="cosmic-rays")

    def test_probability_params_validated(self):
        with pytest.raises(TimingModelError):
            FaultModelSpec(kind="burst", burst_rate=1.5)
        with pytest.raises(TimingModelError):
            FaultModelSpec(kind="stuck-at", stuck_fraction=-0.1)
        with pytest.raises(TimingModelError):
            FaultModelSpec(kind="spatial", spatial_sigma=-1.0)
        with pytest.raises(TimingModelError):
            FaultModelSpec(kind="spatial", spatial_sigma=float("inf"))

    def test_int_params_coerced_to_float(self):
        spec = FaultModelSpec(kind="burst", burst_rate=1)
        assert isinstance(spec.burst_rate, float)
        assert spec == FaultModelSpec(kind="burst", burst_rate=1.0)
        assert spec.identity() == FaultModelSpec(
            kind="burst", burst_rate=1.0
        ).identity()

    def test_bernoulli_identity_is_none(self):
        assert FaultModelSpec().identity() is None
        assert fault_model_identity(None) is None
        assert fault_model_identity(FaultModelSpec()) is None

    def test_identity_only_carries_kind_relevant_params(self):
        a = FaultModelSpec(kind="spatial", spatial_sigma=0.5, burst_rate=0.9)
        b = FaultModelSpec(kind="spatial", spatial_sigma=0.5, burst_rate=0.1)
        assert a.identity() == b.identity()
        assert a.identity() == {"kind": "spatial", "sigma": 0.5}

    def test_dict_round_trip(self):
        for kind in FAULT_MODEL_KINDS:
            spec = FaultModelSpec(kind=kind)
            assert FaultModelSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_params(self):
        with pytest.raises(TimingModelError):
            FaultModelSpec.from_dict({"kind": "burst", "sigma": 1.0})
        with pytest.raises(TimingModelError):
            FaultModelSpec.from_dict({"kind": "nope"})
        with pytest.raises(TimingModelError):
            FaultModelSpec.from_dict({"kind": "burst", "rate": "abc"})

    def test_parse_cli_spelling(self):
        spec = FaultModelSpec.parse("burst:rate=0.4,enter=0.01,exit=0.1")
        assert spec.kind == "burst"
        assert spec.burst_rate == 0.4
        assert spec.burst_enter == 0.01
        assert spec.burst_exit == 0.1
        assert FaultModelSpec.parse("stuck-at").kind == "stuck-at"
        assert FaultModelSpec.parse("lut-bitflip:rate=1e-3").bitflip_rate == 1e-3

    def test_parse_rejects_malformed(self):
        with pytest.raises(TimingModelError):
            FaultModelSpec.parse("")
        with pytest.raises(TimingModelError):
            FaultModelSpec.parse("burst:rate")
        with pytest.raises(TimingModelError):
            FaultModelSpec.parse("burst:=0.4")

    def test_coerce_accepts_all_spellings(self):
        spec = FaultModelSpec(kind="spatial", spatial_sigma=0.5)
        assert FaultModelSpec.coerce(None) is None
        assert FaultModelSpec.coerce(spec) is spec
        assert FaultModelSpec.coerce("spatial:sigma=0.5") == spec
        assert FaultModelSpec.coerce({"kind": "spatial", "sigma": 0.5}) == spec
        with pytest.raises(TimingModelError):
            FaultModelSpec.coerce(42)


class TestGilbertElliott:
    def _injector(self, seed=1, **kwargs):
        params = dict(
            good_rate=0.01, burst_rate=0.6, enter_prob=0.05, exit_prob=0.2
        )
        params.update(kwargs)
        return GilbertElliottInjector(
            rng=RngStream(seed, "faults", "burst"), **params
        )

    def test_dynamic_flag(self):
        assert self._injector().dynamic is True

    def test_deterministic_given_seed(self):
        a = [self._injector(seed=3).sample() for _ in range(500)]
        b = [self._injector(seed=3).sample() for _ in range(500)]
        assert a == b

    def test_two_draw_contract(self):
        injector = self._injector(seed=7)
        shadow = RngStream(7, "faults", "burst").array_uniform(8192)
        for step in range(200):
            error_draw = shadow[2 * step]
            expected = error_draw < (
                injector.burst_rate if injector.in_burst else injector.good_rate
            )
            assert injector.sample() == expected

    def test_stationary_rate(self):
        injector = self._injector(enter_prob=0.1, exit_prob=0.3)
        expected = 0.01 * 0.75 + 0.6 * 0.25
        assert injector.rate == pytest.approx(expected)
        fires = sum(injector.sample() for _ in range(40000))
        assert abs(fires / 40000 - expected) < 0.02

    def test_errors_cluster_in_bursts(self):
        injector = self._injector(
            seed=11, good_rate=0.0, burst_rate=1.0, enter_prob=0.01,
            exit_prob=0.2,
        )
        samples = [injector.sample() for _ in range(20000)]
        assert injector.bursts > 0
        # Every error happens inside a burst, so errors must be adjacent
        # far more often than an i.i.d. stream at the same rate would be.
        errors = sum(samples)
        adjacent = sum(
            1 for a, b in zip(samples, samples[1:]) if a and b
        )
        assert errors > 0
        assert adjacent / errors > 0.3

    def test_invalid_probability_rejected(self):
        with pytest.raises(TimingModelError):
            self._injector(enter_prob=1.5)

    def test_buffer_refill_beyond_8192(self):
        injector = self._injector(seed=5)
        samples = [injector.sample() for _ in range(10000)]
        assert any(samples)


class TestSpatialInjector:
    def test_multiplier_scales_rate(self):
        injector = SpatialInjector(0.1, 2.0, RngStream(1))
        assert injector.rate == pytest.approx(0.2)
        assert injector.base_rate == 0.1
        assert injector.multiplier == 2.0

    def test_rate_clamped_to_one(self):
        assert SpatialInjector(0.8, 5.0, RngStream(1)).rate == 1.0

    def test_negative_multiplier_rejected(self):
        with pytest.raises(TimingModelError):
            SpatialInjector(0.1, -0.5, RngStream(1))

    def test_pvt_map_deterministic_per_labels(self):
        a = pvt_multiplier(3, 1.0, "cu0", "sc1", "ADD")
        assert a == pvt_multiplier(3, 1.0, "cu0", "sc1", "ADD")
        assert a != pvt_multiplier(3, 1.0, "cu0", "sc1", "MUL")
        assert a != pvt_multiplier(4, 1.0, "cu0", "sc1", "ADD")
        assert a > 0.0

    def test_pvt_map_mean_is_one(self):
        sigma = 1.0
        values = [
            pvt_multiplier(0, sigma, "fpu", index) for index in range(4000)
        ]
        mean = sum(values) / len(values)
        assert abs(mean - 1.0) < 0.15

    def test_zero_sigma_is_exactly_one(self):
        assert pvt_multiplier(9, 0.0, "x") == pytest.approx(1.0)


class TestStuckAt:
    def test_always_fires_without_draws(self):
        injector = StuckAtInjector()
        assert injector.rate == 1.0
        assert injector.dynamic is False
        assert all(injector.sample() for _ in range(100))

    def test_stuck_map_deterministic(self):
        verdicts = [is_stuck(5, 0.5, "fpu", index) for index in range(100)]
        assert verdicts == [is_stuck(5, 0.5, "fpu", index) for index in range(100)]
        assert any(verdicts) and not all(verdicts)

    def test_stuck_map_fraction(self):
        hits = sum(is_stuck(1, 0.1, "fpu", index) for index in range(5000))
        assert 350 < hits < 650

    def test_fraction_extremes(self):
        assert not any(is_stuck(1, 0.0, "fpu", index) for index in range(50))
        assert all(is_stuck(1, 1.0, "fpu", index) for index in range(50))


class TestLutBitflipCorruptor:
    def test_zero_rate_consumes_nothing(self):
        rng = RngStream(1, "lut-bitflip")
        corruptor = LutBitflipCorruptor(0.0, rng)
        assert all(corruptor.step(2) is None for _ in range(100))
        # The stream was never touched.
        assert rng.uniform() == RngStream(1, "lut-bitflip").uniform()

    def test_empty_fifo_is_not_exposed(self):
        rng = RngStream(1, "lut-bitflip")
        corruptor = LutBitflipCorruptor(1.0, rng)
        assert corruptor.step(0) is None
        assert corruptor.flips == 0

    def test_flip_bounds_and_counter(self):
        corruptor = LutBitflipCorruptor(1.0, RngStream(2, "lut-bitflip"))
        for _ in range(200):
            entry, bit = corruptor.step(3)
            assert 0 <= entry < 3
            assert 0 <= bit < 32
        assert corruptor.flips == 200

    def test_statistical_rate(self):
        corruptor = LutBitflipCorruptor(0.1, RngStream(3, "lut-bitflip"))
        flips = sum(
            corruptor.step(2) is not None for _ in range(20000)
        )
        assert 1700 < flips < 2300

    def test_invalid_rate_rejected(self):
        with pytest.raises(TimingModelError):
            LutBitflipCorruptor(1.5, RngStream(1))


class TestInjectorForDispatch:
    def test_bernoulli_spec_matches_no_spec(self):
        plain = TimingConfig(error_rate=0.3, seed=9)
        spelled = TimingConfig(
            error_rate=0.3, seed=9, fault_model=FaultModelSpec()
        )
        a = injector_for(plain, "cu0", 1)
        b = injector_for(spelled, "cu0", 1)
        assert type(a) is type(b) is BernoulliInjector
        assert [a.sample() for _ in range(128)] == [
            b.sample() for _ in range(128)
        ]

    def test_burst_dispatch(self):
        config = TimingConfig(
            error_rate=0.01,
            seed=2,
            fault_model=FaultModelSpec(
                kind="burst", burst_rate=0.5, burst_enter=0.01, burst_exit=0.1
            ),
        )
        injector = injector_for(config, "cu0", 0)
        assert isinstance(injector, GilbertElliottInjector)
        assert injector.good_rate == 0.01
        assert injector.burst_rate == 0.5

    def test_spatial_dispatch_varies_per_fpu(self):
        config = TimingConfig(
            error_rate=0.1,
            seed=4,
            fault_model=FaultModelSpec(kind="spatial", spatial_sigma=1.0),
        )
        rates = {
            injector_for(config, "cu0", index).rate for index in range(8)
        }
        assert len(rates) > 1
        expected = min(1.0, 0.1 * pvt_multiplier(4, 1.0, "cu0", 3))
        assert injector_for(config, "cu0", 3).rate == pytest.approx(expected)

    def test_stuck_at_dispatch_splits_by_map(self):
        config = TimingConfig(
            error_rate=0.1,
            seed=6,
            fault_model=FaultModelSpec(kind="stuck-at", stuck_fraction=0.5),
        )
        kinds = {
            type(injector_for(config, "fpu", index)).__name__
            for index in range(32)
        }
        assert kinds == {"StuckAtInjector", "BernoulliInjector"}

    def test_stuck_at_healthy_units_share_bernoulli_streams(self):
        stuck = TimingConfig(
            error_rate=0.4,
            seed=8,
            fault_model=FaultModelSpec(kind="stuck-at", stuck_fraction=0.0),
        )
        plain = TimingConfig(error_rate=0.4, seed=8)
        a = injector_for(stuck, "cu0", 2)
        b = injector_for(plain, "cu0", 2)
        assert [a.sample() for _ in range(128)] == [
            b.sample() for _ in range(128)
        ]

    def test_stuck_at_zero_base_rate_gives_no_error_for_healthy(self):
        config = TimingConfig(
            error_rate=0.0,
            seed=8,
            fault_model=FaultModelSpec(kind="stuck-at", stuck_fraction=0.0),
        )
        assert isinstance(injector_for(config, "x"), NoErrorInjector)

    def test_lut_bitflip_injector_side_is_bernoulli(self):
        config = TimingConfig(
            error_rate=0.02,
            seed=1,
            fault_model=FaultModelSpec(kind="lut-bitflip"),
        )
        assert isinstance(injector_for(config, "x"), BernoulliInjector)

    def test_voltage_dispatch_reaches_factory(self):
        # Regression: VoltageDrivenInjector used to be unreachable
        # through injector_for; the 'voltage' kind now routes it.
        config = TimingConfig(
            voltage=0.80, seed=3, fault_model=FaultModelSpec(kind="voltage")
        )
        injector = injector_for(config, "cu0", 0)
        assert isinstance(injector, VoltageDrivenInjector)
        assert injector.rate > 0.0

    def test_voltage_streams_independent_per_fpu(self):
        config = TimingConfig(
            voltage=0.80, seed=3, fault_model=FaultModelSpec(kind="voltage")
        )
        a = injector_for(config, "cu0", 0)
        b = injector_for(config, "cu0", 1)
        seq_a = [a.sample() for _ in range(256)]
        seq_b = [b.sample() for _ in range(256)]
        assert seq_a != seq_b
        again = injector_for(config, "cu0", 0)
        assert seq_a == [again.sample() for _ in range(256)]


class TestCorruptorFor:
    def test_none_without_lut_bitflip(self):
        assert corruptor_for(TimingConfig(error_rate=0.1), "x") is None
        assert (
            corruptor_for(
                TimingConfig(fault_model=FaultModelSpec(kind="burst")), "x"
            )
            is None
        )

    def test_built_for_lut_bitflip(self):
        timing = TimingConfig(
            seed=5,
            fault_model=FaultModelSpec(kind="lut-bitflip", bitflip_rate=0.25),
        )
        corruptor = corruptor_for(timing, "cu0", 1)
        assert isinstance(corruptor, LutBitflipCorruptor)
        assert corruptor.rate == 0.25

    def test_stream_separate_from_injector_streams(self):
        timing = TimingConfig(
            error_rate=0.1,
            seed=5,
            fault_model=FaultModelSpec(kind="lut-bitflip", bitflip_rate=1.0),
        )
        corruptor = corruptor_for(timing, "cu0", 1)
        injector = injector_for(timing, "cu0", 1)
        flips = [corruptor.step(2) for _ in range(64)]
        # Draining the corruptor's stream must not shift the injector's.
        fresh = injector_for(timing, "cu0", 1)
        assert [injector.sample() for _ in range(64)] == [
            fresh.sample() for _ in range(64)
        ]
        assert all(flip is not None for flip in flips)
