"""Tests for the error control unit and recovery policies."""

import pytest

from repro.errors import RecoveryError
from repro.timing.ecu import (
    ErrorControlUnit,
    HalfFrequencyReplay,
    MultipleIssueReplay,
    RecoveryRecord,
)


class TestMultipleIssueReplay:
    def test_default_cost_is_12_cycles(self):
        policy = MultipleIssueReplay()
        record = policy.recover(pipeline_depth=4, in_flight=4)
        assert record.cycles == 12

    def test_replays_multiple_issues(self):
        record = MultipleIssueReplay(issue_count=3).recover(4, 2)
        assert record.replayed_issues == 3

    def test_flush_counts_in_flight(self):
        record = MultipleIssueReplay().recover(4, 3)
        assert record.flushed_ops == 3

    def test_impossible_in_flight_rejected(self):
        with pytest.raises(RecoveryError):
            MultipleIssueReplay().recover(4, 5)
        with pytest.raises(RecoveryError):
            MultipleIssueReplay().recover(4, -1)

    def test_invalid_parameters(self):
        with pytest.raises(RecoveryError):
            MultipleIssueReplay(recovery_cycles=0)
        with pytest.raises(RecoveryError):
            MultipleIssueReplay(issue_count=0)


class TestHalfFrequencyReplay:
    def test_cost_doubles_pipeline_depth(self):
        record = HalfFrequencyReplay(extra_sync_cycles=2).recover(4, 4)
        assert record.cycles == 10  # 2*4 + 2

    def test_deeper_pipeline_costs_more(self):
        shallow = HalfFrequencyReplay().recover(4, 0)
        deep = HalfFrequencyReplay().recover(16, 0)
        assert deep.cycles > shallow.cycles

    def test_single_replay(self):
        assert HalfFrequencyReplay().recover(4, 0).replayed_issues == 1


class TestRecoveryRecord:
    def test_invalid_records_rejected(self):
        with pytest.raises(RecoveryError):
            RecoveryRecord(cycles=0, replayed_issues=1, flushed_ops=0)
        with pytest.raises(RecoveryError):
            RecoveryRecord(cycles=5, replayed_issues=0, flushed_ops=0)


class TestErrorControlUnit:
    def test_error_signal_triggers_policy(self):
        ecu = ErrorControlUnit(pipeline_depth=4)
        record = ecu.on_error_signal()
        assert record.cycles == 12
        assert ecu.stats.recoveries == 1
        assert ecu.stats.recovery_cycles == 12

    def test_default_in_flight_is_full_pipeline(self):
        ecu = ErrorControlUnit(pipeline_depth=4)
        record = ecu.on_error_signal()
        assert record.flushed_ops == 4

    def test_masked_errors_bypass_recovery(self):
        ecu = ErrorControlUnit(pipeline_depth=4)
        ecu.on_masked_error()
        assert ecu.stats.errors_seen == 1
        assert ecu.stats.masked_by_memoization == 1
        assert ecu.stats.recoveries == 0
        assert ecu.stats.recovery_cycles == 0

    def test_stats_accumulate(self):
        ecu = ErrorControlUnit(pipeline_depth=4)
        ecu.on_error_signal()
        ecu.on_error_signal(in_flight=2)
        ecu.on_masked_error()
        assert ecu.stats.errors_seen == 3
        assert ecu.stats.recoveries == 2
        assert ecu.stats.flushed_ops == 6

    def test_custom_policy(self):
        ecu = ErrorControlUnit(4, HalfFrequencyReplay(extra_sync_cycles=0))
        assert ecu.on_error_signal().cycles == 8

    def test_stats_merge(self):
        a = ErrorControlUnit(4)
        b = ErrorControlUnit(4)
        a.on_error_signal()
        b.on_masked_error()
        a.stats.merge(b.stats)
        assert a.stats.errors_seen == 2
        assert a.stats.masked_by_memoization == 1

    def test_invalid_depth(self):
        with pytest.raises(RecoveryError):
            ErrorControlUnit(0)
