"""Tests for the static-guardbanding model."""

import pytest

from repro.errors import TimingModelError
from repro.timing.guardband import GuardbandPoint, StaticGuardband


class TestSafety:
    def test_nominal_voltage_is_safe(self):
        assert StaticGuardband().is_safe(0.90)

    def test_deep_overscaling_is_unsafe(self):
        assert not StaticGuardband().is_safe(0.80)


class TestMinimumSafeVoltage:
    def test_lands_near_the_error_knee(self):
        safe = StaticGuardband().minimum_safe_voltage()
        # The calibrated model's rates become negligible around 0.86 V.
        assert 0.84 < safe < 0.89

    def test_safe_voltage_monotone_in_budget(self):
        strict = StaticGuardband(max_error_rate=0.0).minimum_safe_voltage()
        relaxed = StaticGuardband(max_error_rate=0.01).minimum_safe_voltage()
        assert relaxed <= strict

    def test_safe_point_meets_budget(self):
        guardband = StaticGuardband(max_error_rate=1e-4)
        safe = guardband.minimum_safe_voltage()
        assert guardband.model.error_rate(safe) <= 1e-4
        # And a point below pays more errors than the budget.
        assert guardband.model.error_rate(safe - 0.02) > 1e-4

    def test_whole_range_safe_returns_low(self):
        guardband = StaticGuardband(max_error_rate=0.5)
        assert guardband.minimum_safe_voltage(low=0.85, high=1.0) == 0.85

    def test_unsatisfiable_budget_rejected(self):
        with pytest.raises(TimingModelError):
            StaticGuardband(max_error_rate=0.0).minimum_safe_voltage(
                low=0.5, high=0.8
            )

    def test_invalid_range_rejected(self):
        with pytest.raises(TimingModelError):
            StaticGuardband().minimum_safe_voltage(low=1.0, high=0.9)


class TestGuardbandPoint:
    def test_margin_fraction(self):
        point = GuardbandPoint(voltage=0.88, error_rate=0.0, margin_vs=0.80)
        assert point.margin_fraction == pytest.approx(0.10)

    def test_guardband_against(self):
        point = StaticGuardband().guardband_against(0.80)
        assert point.margin_fraction > 0.05  # the "untapped" margin
        assert point.error_rate <= 1e-6

    def test_invalid_reference_rejected(self):
        with pytest.raises(TimingModelError):
            StaticGuardband().guardband_against(0.0)

    def test_invalid_budget_rejected(self):
        with pytest.raises(TimingModelError):
            StaticGuardband(max_error_rate=1.0)
