"""Tests for the error injectors."""

import pytest

from repro.config import TimingConfig
from repro.errors import TimingModelError
from repro.timing.errors import (
    BernoulliInjector,
    NoErrorInjector,
    VoltageDrivenInjector,
    injector_for,
)
from repro.utils.rng import RngStream


class TestNoErrorInjector:
    def test_never_fires(self):
        injector = NoErrorInjector()
        assert not any(injector.sample() for _ in range(1000))
        assert injector.rate == 0.0


class TestBernoulliInjector:
    def test_rate_zero_never_fires(self):
        injector = BernoulliInjector(0.0, RngStream(1))
        assert not any(injector.sample() for _ in range(100))

    def test_rate_one_always_fires(self):
        injector = BernoulliInjector(1.0, RngStream(1))
        assert all(injector.sample() for _ in range(100))

    def test_statistical_rate(self):
        injector = BernoulliInjector(0.1, RngStream(2))
        fires = sum(injector.sample() for _ in range(20000))
        assert 1700 < fires < 2300

    def test_deterministic_given_seed(self):
        a = BernoulliInjector(0.5, RngStream(3, "x"))
        b = BernoulliInjector(0.5, RngStream(3, "x"))
        assert [a.sample() for _ in range(100)] == [b.sample() for _ in range(100)]

    def test_buffer_refill_beyond_8192(self):
        injector = BernoulliInjector(0.5, RngStream(4))
        # Crossing the bulk-buffer boundary must not fail or repeat.
        samples = [injector.sample() for _ in range(20000)]
        assert 9000 < sum(samples) < 11000

    def test_invalid_rate_rejected(self):
        with pytest.raises(TimingModelError):
            BernoulliInjector(1.5, RngStream(1))
        with pytest.raises(TimingModelError):
            BernoulliInjector(-0.1, RngStream(1))

    # The draw-consumption contract below is load-bearing: both execution
    # backends call the same injector objects in the same per-lane order,
    # so backend bit-identity rests on every sample() consuming a fixed,
    # rate-determined number of stream draws (docs/fault-models.md).

    def test_rate_zero_consumes_no_draws(self):
        rng = RngStream(6, "timing-errors")
        injector = BernoulliInjector(0.0, rng)
        for _ in range(100):
            injector.sample()
        # The stream is untouched: a fresh stream yields the same next draw.
        assert rng.uniform() == RngStream(6, "timing-errors").uniform()

    def test_positive_rate_consumes_one_uniform_per_sample(self):
        injector = BernoulliInjector(0.5, RngStream(7, "timing-errors"))
        shadow = RngStream(7, "timing-errors").array_uniform(8192)
        samples = [injector.sample() for _ in range(300)]
        assert samples == [bool(draw < 0.5) for draw in shadow[:300]]


class TestVoltageDrivenInjector:
    def test_nominal_voltage_is_error_free(self):
        injector = VoltageDrivenInjector(0.90, RngStream(5))
        assert injector.rate == 0.0

    def test_overscaled_voltage_fires(self):
        injector = VoltageDrivenInjector(0.80, RngStream(5))
        assert injector.rate > 0.1
        assert any(injector.sample() for _ in range(100))


class TestInjectorFor:
    def test_zero_rate_gives_no_error_injector(self):
        injector = injector_for(TimingConfig(error_rate=0.0))
        assert isinstance(injector, NoErrorInjector)

    def test_nonzero_rate_gives_bernoulli(self):
        injector = injector_for(TimingConfig(error_rate=0.1))
        assert isinstance(injector, BernoulliInjector)
        assert injector.rate == 0.1

    def test_stream_labels_decorrelate(self):
        config = TimingConfig(error_rate=0.5)
        a = injector_for(config, "cu0", "lane0")
        b = injector_for(config, "cu0", "lane1")
        seq_a = [a.sample() for _ in range(64)]
        seq_b = [b.sample() for _ in range(64)]
        assert seq_a != seq_b

    def test_same_labels_reproduce(self):
        config = TimingConfig(error_rate=0.5)
        a = injector_for(config, "cu0", 3)
        b = injector_for(config, "cu0", 3)
        assert [a.sample() for _ in range(64)] == [b.sample() for _ in range(64)]
