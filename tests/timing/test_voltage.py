"""Tests for the voltage-overscaling error model."""

import pytest

from repro.errors import TimingModelError
from repro.timing.voltage import (
    AlphaPowerDelayModel,
    PathActivationModel,
    VoltageModel,
)


class TestAlphaPowerDelay:
    def test_nominal_scale_is_one(self):
        model = AlphaPowerDelayModel()
        assert model.delay_scale(model.nominal_voltage) == pytest.approx(1.0)

    def test_lower_voltage_is_slower(self):
        model = AlphaPowerDelayModel()
        assert model.delay_scale(0.84) > 1.0
        assert model.delay_scale(0.80) > model.delay_scale(0.84)

    def test_monotone_decreasing_in_voltage(self):
        model = AlphaPowerDelayModel()
        scales = [model.delay_scale(v / 100) for v in range(80, 95)]
        assert all(a > b for a, b in zip(scales, scales[1:]))

    def test_subthreshold_voltage_rejected(self):
        model = AlphaPowerDelayModel()
        with pytest.raises(TimingModelError):
            model.delay_scale(0.3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TimingModelError):
            AlphaPowerDelayModel(threshold_voltage=-0.1)
        with pytest.raises(TimingModelError):
            AlphaPowerDelayModel(threshold_voltage=0.95)
        with pytest.raises(TimingModelError):
            AlphaPowerDelayModel(alpha=0.0)


class TestPathActivation:
    def test_no_violations_without_scaling(self):
        paths = PathActivationModel()
        assert paths.violation_probability(1.0) < 1e-4

    def test_probability_grows_with_delay(self):
        paths = PathActivationModel()
        p1 = paths.violation_probability(1.05)
        p2 = paths.violation_probability(1.15)
        assert p2 > p1

    def test_extreme_scaling_saturates(self):
        paths = PathActivationModel()
        assert paths.violation_probability(10.0) > 0.99

    def test_invalid_parameters(self):
        with pytest.raises(TimingModelError):
            PathActivationModel(mean=1.5)
        with pytest.raises(TimingModelError):
            PathActivationModel(std=0.0)
        with pytest.raises(TimingModelError):
            PathActivationModel().violation_probability(0.0)


class TestVoltageModel:
    """The calibrated end-to-end shape of Section 5.3."""

    def test_error_free_at_nominal(self):
        assert VoltageModel().error_rate(0.90) == 0.0

    def test_error_free_down_to_0_86(self):
        model = VoltageModel()
        assert model.error_rate(0.88) == 0.0
        assert model.error_rate(0.86) <= 0.001

    def test_small_rate_at_0_84(self):
        rate = VoltageModel().error_rate(0.84)
        assert 0.0005 < rate < 0.03

    def test_abrupt_rise_below_0_84(self):
        model = VoltageModel()
        assert model.error_rate(0.82) > 5 * model.error_rate(0.84)
        assert model.error_rate(0.80) > 3 * model.error_rate(0.82)

    def test_substantial_rate_at_0_80(self):
        rate = VoltageModel().error_rate(0.80)
        assert 0.15 < rate < 0.6

    def test_rate_is_monotone_in_voltage(self):
        model = VoltageModel()
        rates = [model.error_rate(v / 100) for v in range(80, 91)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rate_never_exceeds_one(self):
        assert VoltageModel().error_rate(0.5) <= 1.0

    def test_sweep_helper(self):
        sweep = VoltageModel().sweep([0.9, 0.8])
        assert set(sweep) == {0.9, 0.8}
        assert sweep[0.8] > sweep[0.9]
