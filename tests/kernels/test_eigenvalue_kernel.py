"""Tests for the EigenValue kernel."""

import numpy as np
import pytest

from repro.config import MemoConfig, SimConfig, small_arch
from repro.gpu.executor import GpuExecutor
from repro.kernels.eigenvalue import EigenValueWorkload


class TestEigenValueFunctional:
    def test_bisection_approaches_numpy(self):
        workload = EigenValueWorkload(8, iterations=30)
        out = np.sort(workload.golden())
        expected = workload.reference_eigenvalues()
        interval = workload.upper - workload.lower
        tolerance = interval / 2**29 + 1e-3
        assert np.allclose(out, expected, atol=max(tolerance, 1e-3))

    def test_eigenvalues_sorted_by_index(self):
        workload = EigenValueWorkload(12, iterations=20)
        out = workload.golden()
        assert np.all(np.diff(out) >= -1e-4)

    def test_gershgorin_bounds_contain_spectrum(self):
        workload = EigenValueWorkload(10, iterations=5)
        expected = workload.reference_eigenvalues()
        assert workload.lower <= expected.min()
        assert workload.upper >= expected.max()

    def test_matrix_entries_are_integers(self):
        workload = EigenValueWorkload(6)
        assert np.all(workload.diag == np.trunc(workload.diag))
        assert np.all(workload.offdiag == np.trunc(workload.offdiag))

    def test_too_small_matrix_rejected(self):
        with pytest.raises(Exception):
            EigenValueWorkload(1)


class TestEigenValueOnDevice:
    def test_exact_matching_is_bit_exact(self):
        workload = EigenValueWorkload(8, iterations=8)
        golden = workload.golden()
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        out = workload.run(GpuExecutor(config))
        assert np.array_equal(out, golden)

    def test_matrix_conversions_memoize_heavily(self):
        workload = EigenValueWorkload(32, iterations=4)
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        executor = GpuExecutor(config)
        workload.run(executor)
        from repro.isa.opcodes import UnitKind

        stats = executor.device.lut_stats()
        # Every work-item converts the same integer matrix: the FP2INT
        # stream is the most redundant of the kernel.
        assert stats[UnitKind.FP2INT].hit_rate >= 0.5
