"""Tests for BlackScholes and BinomialOption."""

import math

import numpy as np
import pytest

from repro.config import MemoConfig, SimConfig, small_arch
from repro.gpu.executor import GpuExecutor
from repro.kernels.binomial_option import BinomialOptionWorkload
from repro.kernels.black_scholes import BlackScholesWorkload


def scipy_call_put(s, k, t, r, sigma):
    from math import erf, exp, log, sqrt

    def cnd(x):
        return 0.5 * (1.0 + erf(x / sqrt(2.0)))

    d1 = (log(s / k) + (r + sigma * sigma / 2) * t) / (sigma * sqrt(t))
    d2 = d1 - sigma * sqrt(t)
    call = s * cnd(d1) - k * exp(-r * t) * cnd(d2)
    put = k * exp(-r * t) * (1 - cnd(d2)) - s * (1 - cnd(d1))
    return call, put


class TestBlackScholesFunctional:
    def test_against_closed_form(self):
        workload = BlackScholesWorkload(16, rate=0.02, volatility=0.30)
        out = workload.golden()
        calls, puts = out[:16], out[16:]
        for i in range(16):
            expected_call, expected_put = scipy_call_put(
                float(workload.price[i]),
                float(workload.strike[i]),
                float(workload.years[i]),
                0.02,
                0.30,
            )
            # The A&S polynomial CND is accurate to ~1e-4 in single precision.
            assert calls[i] == pytest.approx(expected_call, abs=0.02)
            assert puts[i] == pytest.approx(expected_put, abs=0.02)

    def test_put_call_parity(self):
        workload = BlackScholesWorkload(32)
        out = workload.golden()
        calls, puts = out[:32], out[32:]
        for i in range(32):
            s = float(workload.price[i])
            k = float(workload.strike[i])
            t = float(workload.years[i])
            parity = calls[i] - puts[i]
            expected = s - k * math.exp(-workload.rate * t)
            assert parity == pytest.approx(expected, abs=0.02)

    def test_prices_non_negative(self):
        out = BlackScholesWorkload(64).golden()
        assert np.all(out >= -1e-3)


class TestBinomialFunctional:
    def test_converges_to_black_scholes(self):
        # Deep trees converge to the closed form for European calls.
        workload = BinomialOptionWorkload(
            4, steps=64, rate=0.02, volatility=0.30, years=1.0
        )
        out = workload.golden()
        for i in range(4):
            expected_call, _ = scipy_call_put(
                float(workload.price[i]),
                float(workload.strike[i]),
                1.0,
                0.02,
                0.30,
            )
            assert out[i] == pytest.approx(expected_call, abs=0.15)

    def test_deep_otm_option_worthless(self):
        workload = BinomialOptionWorkload(1, steps=16)
        workload.price[0] = 5.0
        workload.strike[0] = 80.0
        assert workload.golden()[0] == pytest.approx(0.0, abs=1e-6)

    def test_deep_itm_option_close_to_intrinsic(self):
        workload = BinomialOptionWorkload(1, steps=16, rate=0.0)
        workload.price[0] = 100.0
        workload.strike[0] = 10.0
        assert workload.golden()[0] == pytest.approx(90.0, rel=0.05)

    def test_price_monotone_in_strike(self):
        workload = BinomialOptionWorkload(3, steps=16)
        workload.price[:] = 20.0
        workload.strike[:] = [10.0, 20.0, 30.0]
        out = workload.golden()
        assert out[0] > out[1] > out[2]


class TestFinanceOnDevice:
    def test_tiny_threshold_passes_host_check(self):
        workload = BlackScholesWorkload(64)
        golden = workload.golden()
        config = SimConfig(
            arch=small_arch(), memo=MemoConfig(threshold=0.000025)
        )
        out = workload.run(GpuExecutor(config))
        assert float(np.max(np.abs(out - golden))) <= workload.output_tolerance()

    def test_binomial_exact_matching_is_bit_exact(self):
        workload = BinomialOptionWorkload(32, steps=8)
        golden = workload.golden()
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        out = workload.run(GpuExecutor(config))
        assert np.array_equal(out, golden)

    def test_binomial_shared_setup_memoizes_across_items(self):
        workload = BinomialOptionWorkload(64, steps=8)
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        executor = GpuExecutor(config)
        workload.run(executor)
        stats = executor.device.lut_stats()
        from repro.isa.opcodes import UnitKind

        # The per-item lattice constants (u, pu, discount...) are identical
        # across work-items: SQRT/RECIP hit for 3 of every 4 lane-sharing items.
        assert stats[UnitKind.SQRT].hit_rate >= 0.7
        assert stats[UnitKind.RECIP].hit_rate >= 0.7
