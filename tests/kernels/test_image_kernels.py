"""Tests for the Sobel and Gaussian kernels."""

import numpy as np
import pytest

from repro.config import MemoConfig, SimConfig, small_arch
from repro.gpu.executor import GpuExecutor
from repro.images.psnr import psnr
from repro.images.synth import synth_face
from repro.kernels.gaussian import GAUSSIAN_TAPS, GaussianWorkload
from repro.kernels.sobel import SobelWorkload


def flat_image(size=16, value=100.0):
    return np.full((size, size), value, dtype=np.float32)


def step_image(size=16):
    image = np.zeros((size, size), dtype=np.float32)
    image[:, size // 2 :] = 200.0
    return image


class TestSobelFunctional:
    def test_flat_image_has_zero_gradient(self):
        out = SobelWorkload(flat_image()).golden()
        assert np.all(out == 0.0)

    def test_vertical_edge_detected(self):
        size = 16
        out = SobelWorkload(step_image(size)).golden()
        edge_columns = out[:, size // 2 - 1 : size // 2 + 1]
        assert np.all(edge_columns > 0)
        assert np.all(out[:, : size // 2 - 1] == 0.0)

    def test_output_clamped_to_255(self):
        image = np.zeros((8, 8), dtype=np.float32)
        image[:, 4:] = 255.0
        out = SobelWorkload(image).golden()
        assert out.max() <= 255.0
        assert out.min() >= 0.0

    def test_output_is_integer_valued(self):
        # The kernel converts back to uchar pixels with FLT_TO_INT.
        out = SobelWorkload(synth_face(16)).golden()
        assert np.all(out == np.trunc(out))

    def test_matches_reference_convolution(self):
        rng = np.random.default_rng(1)
        image = rng.integers(0, 255, (12, 12)).astype(np.float32)
        out = SobelWorkload(image).golden()
        # Interior pixel check against a hand-rolled Sobel.
        padded = np.pad(image, 1, mode="edge")
        for y in (3, 6):
            for x in (4, 7):
                window = padded[y : y + 3, x : x + 3].astype(np.float64)
                gx = (
                    window[0, 2] - window[0, 0]
                    + 2 * (window[1, 2] - window[1, 0])
                    + window[2, 2] - window[2, 0]
                )
                gy = (
                    window[2, 0] - window[0, 0]
                    + 2 * (window[2, 1] - window[0, 1])
                    + window[2, 2] - window[0, 2]
                )
                expected = min(max(np.sqrt(gx * gx + gy * gy) / 2, 0), 255)
                assert out[y, x] == pytest.approx(np.trunc(expected), abs=1)

    def test_rejects_non_2d_input(self):
        with pytest.raises(Exception):
            SobelWorkload(np.zeros(16, dtype=np.float32))


class TestGaussianFunctional:
    def test_taps_sum_to_one(self):
        assert sum(w for _, _, w in GAUSSIAN_TAPS) == pytest.approx(1.0)

    def test_flat_image_unchanged(self):
        out = GaussianWorkload(flat_image(value=128.0)).golden()
        assert np.all(out == 128.0)

    def test_blur_smooths_step(self):
        out = GaussianWorkload(step_image()).golden()
        # The transition column must hold intermediate values.
        middle = out[8, 7]
        assert 0.0 < middle < 200.0

    def test_output_bounded_by_input_range(self):
        rng = np.random.default_rng(2)
        image = rng.integers(10, 240, (10, 10)).astype(np.float32)
        out = GaussianWorkload(image).golden()
        assert out.min() >= 9.0 and out.max() <= 241.0

    def test_25_taps(self):
        assert len(GAUSSIAN_TAPS) == 25


class TestImageKernelsOnDevice:
    def test_exact_matching_is_lossless(self):
        image = synth_face(24)
        workload = SobelWorkload(image)
        golden = workload.golden()
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        out = workload.run(GpuExecutor(config))
        assert np.array_equal(out, golden)

    def test_approximate_matching_stays_above_30db(self):
        image = synth_face(32)
        workload = GaussianWorkload(image)
        golden = workload.golden()
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.4))
        out = workload.run(GpuExecutor(config))
        assert psnr(golden, out) >= 30.0

    def test_psnr_monotone_with_threshold(self):
        image = synth_face(24)
        workload = SobelWorkload(image)
        golden = workload.golden()
        quality = []
        for threshold in (0.0, 0.5, 1.0):
            config = SimConfig(
                arch=small_arch(), memo=MemoConfig(threshold=threshold)
            )
            out = workload.run(GpuExecutor(config))
            quality.append(psnr(golden, out))
        assert quality[0] == float("inf")
        assert quality[0] >= quality[1] >= quality[2]

    def test_hit_rate_grows_with_threshold(self):
        image = synth_face(24)
        rates = []
        for threshold in (0.0, 1.0):
            config = SimConfig(
                arch=small_arch(), memo=MemoConfig(threshold=threshold)
            )
            executor = GpuExecutor(config)
            SobelWorkload(image).run(executor)
            stats = executor.device.lut_stats()
            rates.append(
                sum(s.hits for s in stats.values())
                / sum(s.lookups for s in stats.values())
            )
        assert rates[1] > rates[0]
