"""Per-kernel FP-operation mixes: the structure behind Figure 8.

These tests pin which functional units each kernel activates and the
per-work-item op counts, so refactors cannot silently change the op
mixes the hit-rate and energy results depend on.
"""

import pytest

from repro.analysis.replay import capture_trace
from repro.config import ArchConfig
from repro.isa.opcodes import UnitKind
from repro.kernels.registry import KERNEL_REGISTRY


@pytest.fixture(scope="module")
def traces():
    """One captured trace per kernel (module-scoped: capture is costly)."""
    return {
        name: capture_trace(spec.default_factory())
        for name, spec in KERNEL_REGISTRY.items()
    }


def units_used(trace):
    return {event.unit for event in trace.events}


def ops_by_unit(trace):
    counts = {}
    for event in trace.events:
        counts[event.unit] = counts.get(event.unit, 0) + 1
    return counts


class TestActivatedUnits:
    def test_sobel_units(self, traces):
        assert units_used(traces["Sobel"]) == {
            UnitKind.ADD,
            UnitKind.MUL,
            UnitKind.MULADD,
            UnitKind.SQRT,
            UnitKind.FP2INT,
        }

    def test_gaussian_units(self, traces):
        assert units_used(traces["Gaussian"]) == {
            UnitKind.ADD,
            UnitKind.MULADD,
            UnitKind.FP2INT,
        }

    def test_haar_units(self, traces):
        assert units_used(traces["Haar"]) == {UnitKind.ADD, UnitKind.MUL}

    def test_fwt_activates_only_the_adder(self, traces):
        assert units_used(traces["FWT"]) == {UnitKind.ADD}

    def test_black_scholes_activates_six_units(self, traces):
        assert units_used(traces["BlackScholes"]) == set(UnitKind)

    def test_binomial_units(self, traces):
        assert units_used(traces["BinomialOption"]) == set(UnitKind)

    def test_eigenvalue_units(self, traces):
        assert units_used(traces["EigenValue"]) == {
            UnitKind.ADD,
            UnitKind.MUL,
            UnitKind.RECIP,
            UnitKind.FP2INT,
        }


class TestOpCounts:
    def test_sobel_ops_per_pixel(self, traces):
        trace = traces["Sobel"]
        pixels = 64 * 64
        # 8 conversions + 10 gradient ops + 2 magnitude + sqrt + scale +
        # 2 clamps + 1 out-conversion = 25 per pixel.
        assert len(trace.events) == 25 * pixels

    def test_gaussian_ops_per_pixel(self, traces):
        trace = traces["Gaussian"]
        pixels = 64 * 64
        # 25 x (convert + muladd) + 2 clamps + 1 out-conversion = 53.
        assert len(trace.events) == 53 * pixels

    def test_fwt_ops(self, traces):
        # n/2 butterflies x 2 ops x log2(n) stages, n = 512.
        assert len(traces["FWT"].events) == 256 * 2 * 9

    def test_haar_ops(self, traces):
        # Sum over levels of half x 4 ops, n = 256: 4 * (128+64+...+1).
        assert len(traces["Haar"].events) == 4 * 255

    def test_conversion_share_of_gaussian(self, traces):
        counts = ops_by_unit(traces["Gaussian"])
        total = sum(counts.values())
        # 26 of 53 ops are conversions: FP2INT dominates the mix.
        assert counts[UnitKind.FP2INT] / total == pytest.approx(26 / 53)

    def test_every_kernel_runs_at_least_one_wavefront_group(self, traces):
        arch = ArchConfig()
        for name, trace in traces.items():
            lanes = {e.lane_index for e in trace.events}
            assert len(lanes) == arch.stream_cores_per_cu, name
