"""Tests for Haar and FWT transform kernels."""

import math

import numpy as np
import pytest

from repro.config import MemoConfig, SimConfig, small_arch
from repro.gpu.executor import GpuExecutor
from repro.kernels.fwt import FwtWorkload
from repro.kernels.haar import INV_SQRT2, HaarWorkload


def hadamard(n):
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h


class TestHaarFunctional:
    def test_single_level_pair(self):
        out = HaarWorkload(np.array([3.0, 1.0], dtype=np.float32)).golden()
        assert out[0] == pytest.approx(4.0 * INV_SQRT2, rel=1e-6)
        assert out[1] == pytest.approx(2.0 * INV_SQRT2, rel=1e-6)

    def test_energy_preserved(self):
        # Orthonormal transform: sum of squares is invariant.
        signal = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], np.float32)
        out = HaarWorkload(signal).golden()
        assert float(np.sum(out**2)) == pytest.approx(
            float(np.sum(signal.astype(np.float64) ** 2)), rel=1e-4
        )

    def test_constant_signal_concentrates_in_dc(self):
        signal = np.full(8, 5.0, dtype=np.float32)
        out = HaarWorkload(signal).golden()
        assert out[0] == pytest.approx(5.0 * math.sqrt(8), rel=1e-5)
        assert np.allclose(out[1:], 0.0, atol=1e-5)

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(3)
        signal = rng.uniform(-10, 10, 16).astype(np.float32)
        out = HaarWorkload(signal).golden()

        ref = signal.astype(np.float64).copy()
        length = 16
        while length >= 2:
            half = length // 2
            evens, odds = ref[0 : length : 2][:half].copy(), None
            a = ref[: length].copy()
            s = (a[0::2] + a[1::2]) / math.sqrt(2)
            d = (a[0::2] - a[1::2]) / math.sqrt(2)
            ref[:half] = s
            ref[half:length] = d
            length = half
        assert np.allclose(out, ref, atol=1e-3)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(Exception):
            HaarWorkload(np.zeros(6, dtype=np.float32))


class TestFwtFunctional:
    def test_matches_hadamard_matrix(self):
        rng = np.random.default_rng(4)
        signal = rng.integers(-4, 4, 16).astype(np.float32)
        out = FwtWorkload(signal).golden()
        expected = hadamard(16) @ signal.astype(np.float64)
        assert np.allclose(out, expected)

    def test_impulse_spreads_uniformly(self):
        signal = np.zeros(8, dtype=np.float32)
        signal[0] = 1.0
        out = FwtWorkload(signal).golden()
        assert np.allclose(out, 1.0)

    def test_involution_up_to_scale(self):
        rng = np.random.default_rng(5)
        signal = rng.integers(-8, 8, 8).astype(np.float32)
        once = FwtWorkload(signal).golden()
        twice = FwtWorkload(once).golden()
        assert np.allclose(twice, 8.0 * signal.astype(np.float64))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(Exception):
            FwtWorkload(np.zeros(12, dtype=np.float32))


class TestTransformsOnDevice:
    def test_fwt_exact_matching_is_bit_exact(self):
        signal = np.where(np.arange(64) % 3 == 0, 1.0, -1.0).astype(np.float32)
        workload = FwtWorkload(signal)
        golden = workload.golden()
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.0))
        out = workload.run(GpuExecutor(config))
        assert np.array_equal(out, golden)

    def test_haar_small_threshold_bounded_error(self):
        rng = np.random.default_rng(6)
        signal = np.round(rng.uniform(-40, 40, 64)).astype(np.float32)
        workload = HaarWorkload(signal)
        golden = workload.golden()
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=0.046))
        out = workload.run(GpuExecutor(config))
        # Error grows with the log2-depth cascade but stays bounded.
        assert float(np.max(np.abs(out - golden))) <= workload.output_tolerance()
