"""Tests for the Table-1 registry and host-side validation."""

import pytest

from repro.config import MemoConfig, SimConfig, small_arch
from repro.errors import KernelError
from repro.kernels.registry import KERNEL_REGISTRY, table1_rows, workload_by_name
from repro.kernels.validation import ACCEPTABLE_PSNR_DB, validate_workload

PAPER_THRESHOLDS = {
    "Sobel": 1.0,
    "Gaussian": 0.8,
    "Haar": 0.046,
    "BinomialOption": 0.000025,
    "BlackScholes": 0.000025,
    "FWT": 0.0,
    "EigenValue": 0.0,
}


class TestRegistry:
    def test_all_seven_kernels_present(self):
        assert set(KERNEL_REGISTRY) == set(PAPER_THRESHOLDS)

    def test_paper_thresholds_match_table1(self):
        for name, threshold in PAPER_THRESHOLDS.items():
            assert KERNEL_REGISTRY[name].paper_threshold == threshold

    def test_error_tolerant_flags(self):
        assert KERNEL_REGISTRY["Sobel"].error_tolerant
        assert KERNEL_REGISTRY["Gaussian"].error_tolerant
        for name in ("Haar", "BinomialOption", "BlackScholes", "FWT", "EigenValue"):
            assert not KERNEL_REGISTRY[name].error_tolerant

    def test_workload_by_name(self):
        workload = workload_by_name("FWT")
        assert workload.name == "FWT"

    def test_unknown_name_rejected(self):
        with pytest.raises(KernelError):
            workload_by_name("Mandelbrot")

    def test_factories_produce_fresh_instances(self):
        a = workload_by_name("Haar")
        b = workload_by_name("Haar")
        assert a is not b

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 7
        assert ("Sobel", "face (1536x1536)", 1.0) in rows

    def test_exact_kernels_use_zero_threshold(self):
        assert KERNEL_REGISTRY["FWT"].paper_threshold == 0.0
        assert KERNEL_REGISTRY["EigenValue"].paper_threshold == 0.0


class TestValidation:
    def _config(self, threshold):
        return SimConfig(arch=small_arch(), memo=MemoConfig(threshold=threshold))

    def test_image_kernel_judged_by_psnr(self):
        spec = KERNEL_REGISTRY["Sobel"]
        result = validate_workload(
            spec.default_factory(), self._config(spec.paper_threshold)
        )
        assert result.psnr_db is not None
        assert result.passed
        assert result.psnr_db >= ACCEPTABLE_PSNR_DB

    def test_exact_kernel_passes_bit_exactly(self):
        spec = KERNEL_REGISTRY["FWT"]
        result = validate_workload(spec.default_factory(), self._config(0.0))
        assert result.passed
        assert result.max_abs_error == 0.0
        assert result.psnr_db is None

    def test_excessive_threshold_fails_image_check(self):
        spec = KERNEL_REGISTRY["Gaussian"]
        result = validate_workload(spec.default_factory(), self._config(40.0))
        assert not result.passed

    def test_result_string_rendering(self):
        spec = KERNEL_REGISTRY["Haar"]
        result = validate_workload(
            spec.default_factory(), self._config(spec.paper_threshold)
        )
        text = str(result)
        assert "Haar" in text
        assert "Passed" in text or "FAILED" in text

    @pytest.mark.parametrize("name", sorted(KERNEL_REGISTRY))
    def test_every_kernel_passes_at_its_table1_threshold(self, name):
        """The paper's Table-1 acceptance, re-validated end to end."""
        spec = KERNEL_REGISTRY[name]
        result = validate_workload(
            spec.default_factory(), self._config(spec.threshold)
        )
        assert result.passed, str(result)
