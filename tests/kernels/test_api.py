"""Tests for the work-item API and Buffer."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.isa.opcodes import UnitKind
from repro.kernels.api import Buffer, WorkItemCtx


class TestBuffer:
    def test_zeros(self):
        buf = Buffer.zeros(4)
        assert len(buf) == 4
        assert buf.load(0) == 0.0

    def test_from_array(self):
        buf = Buffer.from_array(np.array([1.0, 2.0]))
        assert buf.load(1) == 2.0

    def test_from_array_copies(self):
        arr = np.array([1.0], dtype=np.float32)
        buf = Buffer.from_array(arr)
        arr[0] = 99.0
        assert buf.load(0) == 1.0

    def test_store_quantizes_to_float32(self):
        buf = Buffer.zeros(1)
        buf.store(0, 0.1)
        assert buf.load(0) == float(np.float32(0.1))

    def test_2d_input_flattened(self):
        buf = Buffer(np.ones((2, 2)))
        assert len(buf) == 4

    def test_negative_size_rejected(self):
        with pytest.raises(KernelError):
            Buffer(-1)

    def test_copy_is_independent(self):
        buf = Buffer([1.0, 2.0])
        clone = buf.copy()
        clone.store(0, 9.0)
        assert buf.load(0) == 1.0

    def test_to_array_is_copy(self):
        buf = Buffer([1.0])
        arr = buf.to_array()
        arr[0] = 5.0
        assert buf.load(0) == 1.0


class TestWorkItemCtx:
    def test_ids(self):
        ctx = WorkItemCtx(global_id=70, local_id=6, group_id=1, global_size=128)
        assert ctx.global_id == 70
        assert ctx.local_id == 6
        assert ctx.group_id == 1
        assert ctx.global_size == 128

    @pytest.mark.parametrize(
        "method,args,mnemonic,unit",
        [
            ("fadd", (1.0, 2.0), "ADD", UnitKind.ADD),
            ("fsub", (1.0, 2.0), "SUB", UnitKind.ADD),
            ("fmul", (1.0, 2.0), "MUL", UnitKind.MUL),
            ("fmax", (1.0, 2.0), "MAX", UnitKind.ADD),
            ("fmin", (1.0, 2.0), "MIN", UnitKind.ADD),
            ("fsete", (1.0, 2.0), "SETE", UnitKind.ADD),
            ("fsetgt", (1.0, 2.0), "SETGT", UnitKind.ADD),
            ("fsetge", (1.0, 2.0), "SETGE", UnitKind.ADD),
            ("fsetne", (1.0, 2.0), "SETNE", UnitKind.ADD),
            ("fmuladd", (1.0, 2.0, 3.0), "MULADD", UnitKind.MULADD),
            ("fmulsub", (1.0, 2.0, 3.0), "MULSUB", UnitKind.MULADD),
            ("fsqrt", (4.0,), "SQRT", UnitKind.SQRT),
            ("frsqrt", (4.0,), "RSQRT", UnitKind.SQRT),
            ("fsin", (0.0,), "SIN", UnitKind.SQRT),
            ("fcos", (0.0,), "COS", UnitKind.SQRT),
            ("fexp", (0.0,), "EXP", UnitKind.SQRT),
            ("flog", (1.0,), "LOG", UnitKind.SQRT),
            ("frecip", (2.0,), "RECIP", UnitKind.RECIP),
            ("flt2int", (2.5,), "FLT_TO_INT", UnitKind.FP2INT),
            ("int2flt", (2.0,), "INT_TO_FLT", UnitKind.FP2INT),
            ("ftrunc", (2.5,), "TRUNC", UnitKind.FP2INT),
            ("frndne", (2.5,), "RNDNE", UnitKind.FP2INT),
            ("ffloor", (2.5,), "FLOOR", UnitKind.ADD),
            ("ffract", (2.5,), "FRACT", UnitKind.ADD),
        ],
    )
    def test_builders_produce_requests(self, method, args, mnemonic, unit):
        ctx = WorkItemCtx(0)
        opcode, operands = getattr(ctx, method)(*args)
        assert opcode.mnemonic == mnemonic
        assert opcode.unit is unit
        assert operands == args
