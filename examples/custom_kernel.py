#!/usr/bin/env python3
"""Writing your own device kernel and deciding whether to memoize it.

The library is not limited to the paper's seven workloads: any
data-parallel computation can be expressed as a generator kernel over the
FP-op API.  This example implements 2-D vector normalization (the inner
loop of lighting/physics kernels), profiles its value locality, and makes
the Section-4.2 deployment decision: keep the memoization module on, or
power-gate it for this application.

Usage:
    python examples/custom_kernel.py [--items 256] [--quantized/--continuous]
"""

import argparse

import numpy as np

from repro import GpuExecutor, MemoConfig, SimConfig, small_arch
from repro.analysis.locality import analyze_trace
from repro.analysis.replay import capture_trace
from repro.kernels.api import Buffer
from repro.kernels.base import Workload


def normalize_kernel(ctx, xs, ys, out_x, out_y):
    """Per-item: (x, y) / |(x, y)| with an RSQRT, like shader code."""
    i = ctx.global_id
    x = xs.load(i)
    y = ys.load(i)
    x2 = yield ctx.fmul(x, x)
    len2 = yield ctx.fmuladd(y, y, x2)
    inv_len = yield ctx.frsqrt(len2)
    nx = yield ctx.fmul(x, inv_len)
    ny = yield ctx.fmul(y, inv_len)
    out_x.store(i, nx)
    out_y.store(i, ny)


class NormalizeWorkload(Workload):
    """Vector normalization over a batch of 2-D vectors."""

    name = "Normalize2D"

    def __init__(self, n: int, quantized: bool = True, seed: int = 21) -> None:
        rng = np.random.default_rng(seed)
        if quantized:
            # Particles advected by a coarse flow field: every cell of 32
            # consecutive particles shares one integer field vector — the
            # kind of spatial coherence real simulation workloads have.
            cells = (n + 31) // 32
            field_x = np.round(rng.uniform(-8.0, 8.0, cells))
            field_y = np.round(rng.uniform(-8.0, 8.0, cells))
            xs = np.repeat(field_x, 32)[:n]
            ys = np.repeat(field_y, 32)[:n]
        else:
            xs = rng.uniform(-8.0, 8.0, n)
            ys = rng.uniform(-8.0, 8.0, n)
        self.xs = xs.astype(np.float32)
        self.ys = ys.astype(np.float32)
        self.n = n

    def run(self, runner):
        xs, ys = Buffer.from_array(self.xs), Buffer.from_array(self.ys)
        out_x, out_y = Buffer.zeros(self.n), Buffer.zeros(self.n)
        runner.run(normalize_kernel, self.n, (xs, ys, out_x, out_y))
        return np.stack([out_x.to_array(), out_y.to_array()])

    def output_tolerance(self) -> float:
        return 0.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--items", type=int, default=256)
    parser.add_argument(
        "--continuous",
        action="store_true",
        help="use continuous (non-quantized) inputs: low locality",
    )
    args = parser.parse_args()

    workload = NormalizeWorkload(args.items, quantized=not args.continuous)
    kind = "continuous" if args.continuous else "quantized"
    print(f"Normalize2D over {args.items} {kind} vectors\n")

    # 1. Profile value locality (what a compiler pass would measure).
    trace = capture_trace(workload)
    print("Per-FPU value locality (FIFO-2 capture = exact-match hit bound):")
    reports = analyze_trace(trace)
    for report in sorted(reports.values(), key=lambda r: r.unit.value):
        print(f"  {report.unit.value:<8} executions {report.executions:>6}  "
              f"norm. entropy {report.normalized_entropy:4.2f}  "
              f"FIFO-2 capture {report.fifo2_capture:5.1%}")

    # 2. Measure the actual energy outcome, module on vs power-gated.
    def energy(memoized, power_gated=False):
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(threshold=0.0, power_gated=power_gated),
        )
        executor = GpuExecutor(config, memoized=memoized)
        NormalizeWorkload(args.items, quantized=not args.continuous).run(
            executor
        )
        return executor.device.energy_report().total_pj

    base = energy(memoized=False)
    with_module = energy(memoized=True)
    saving = 1.0 - with_module / base
    print(f"\nEnergy with module on : {with_module:10.1f} pJ "
          f"({saving:+.1%} vs baseline)")
    print(f"Energy power-gated    : {base:10.1f} pJ (baseline)")

    decision = "keep the module ON" if saving > 0 else "POWER-GATE the module"
    print(f"\nDeployment decision for this application: {decision}")
    print("(Section 4.2: applications lacking value locality disable the "
          "module by power-gating and avoid any penalty.)")


if __name__ == "__main__":
    main()
