#!/usr/bin/env python3
"""Error-intolerant finance kernels under rising timing-error rates.

BlackScholes and BinomialOption run with *exact* (or near-exact) matching
so the host-side self-check must keep passing no matter the error rate:
the architecture recovers every unmasked error, and memoization hits mask
errors for free.  The example sweeps the error rate, verifies correctness
at each point, and reports how the recovery burden shifts from the costly
ECU replay (baseline) to zero-cycle LUT masking (memoized).

Usage:
    python examples/finance_resilience.py [--options 128]
"""

import argparse

import numpy as np

from repro import GpuExecutor, MemoConfig, SimConfig, TimingConfig, small_arch
from repro.kernels.binomial_option import BinomialOptionWorkload
from repro.kernels.black_scholes import BlackScholesWorkload

ERROR_RATES = (0.0, 0.01, 0.02, 0.04)


def run_kernel(make_workload, threshold: float, label: str) -> None:
    golden = make_workload().golden()
    print(f"{label} (matching threshold {threshold}):")
    print(f"  {'err rate':>8}  {'check':>6}  {'masked':>7}  {'recovered':>9}  "
          f"{'stall cyc':>9}  {'saving':>7}")
    for rate in ERROR_RATES:
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(threshold=threshold),
            timing=TimingConfig(error_rate=rate),
        )
        memo_ex = GpuExecutor(config)
        output = make_workload().run(memo_ex)
        max_err = float(np.max(np.abs(output - golden)))
        check = "pass" if max_err <= 1e-3 else "FAIL"

        base_ex = GpuExecutor(config, memoized=False)
        make_workload().run(base_ex)

        memo_counters = memo_ex.device.counters()
        masked = sum(c.errors_masked for c in memo_counters.values())
        recovered = sum(c.errors_recovered for c in memo_counters.values())
        stalls = sum(c.recovery_stall_cycles for c in memo_counters.values())
        saving = memo_ex.device.energy_report().saving_vs(
            base_ex.device.energy_report()
        )
        print(f"  {rate:>8.0%}  {check:>6}  {masked:>7}  {recovered:>9}  "
              f"{stalls:>9}  {saving:>7.1%}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--options", type=int, default=128)
    args = parser.parse_args()

    run_kernel(
        lambda: BlackScholesWorkload(args.options),
        threshold=0.000025,
        label=f"BlackScholes, {args.options} options",
    )
    run_kernel(
        lambda: BinomialOptionWorkload(max(args.options // 2, 16), steps=16),
        threshold=0.000025,
        label=f"BinomialOption, {max(args.options // 2, 16)} options x 16 steps",
    )


if __name__ == "__main__":
    main()
