#!/usr/bin/env python3
"""Quickstart: temporal memoization on a Sobel filter.

Runs the Sobel edge detector on a synthetic portrait twice — once on the
baseline resilient GPGPU and once with the temporal memoization modules
programmed for approximate matching (threshold 1.0, the paper's Table-1
choice) — then reports hit rates, output fidelity (PSNR) and the energy
saving.  Also dumps the input and both outputs as viewable PGM files.

Usage:
    python examples/quickstart.py [--size 64] [--threshold 1.0]
"""

import argparse
from pathlib import Path

from repro import (
    EnergyModel,
    GpuExecutor,
    MemoConfig,
    SimConfig,
    TimingConfig,
    small_arch,
)
from repro.energy.report import format_energy_report
from repro.images import psnr, synth_face, write_pgm
from repro.kernels.sobel import SobelWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=64, help="image size in pixels")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.0,
        help="approximate-matching threshold (0 = exact, bit-by-bit)",
    )
    parser.add_argument(
        "--error-rate",
        type=float,
        default=0.02,
        help="injected per-instruction timing-error rate",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path("quickstart_output"), help="PGM dump dir"
    )
    args = parser.parse_args()

    image = synth_face(args.size)
    workload = SobelWorkload(image)
    config = SimConfig(
        arch=small_arch(),
        memo=MemoConfig(threshold=args.threshold),
        timing=TimingConfig(error_rate=args.error_rate),
    )

    print(f"Sobel on a {args.size}x{args.size} synthetic portrait, "
          f"{args.error_rate:.0%} timing-error rate\n")

    # Golden output (exact float32, no errors) for fidelity measurement.
    golden = workload.golden()

    # Memoized resilient architecture.
    memo_executor = GpuExecutor(config)
    memo_output = workload.run(memo_executor)

    # Baseline detect-then-correct architecture.
    base_executor = GpuExecutor(config, memoized=False)
    base_output = workload.run(base_executor)

    print("Per-FPU hit rates (threshold "
          f"{args.threshold}, 2-entry FIFOs):")
    for kind, stats in sorted(
        memo_executor.device.lut_stats().items(), key=lambda kv: kv[0].value
    ):
        if stats.lookups:
            print(f"  {kind.value:<8} {stats.hit_rate:6.1%}  "
                  f"({stats.hits}/{stats.lookups} lookups)")

    print(f"\nOutput PSNR vs exact execution: {psnr(golden, memo_output):.1f} dB "
          "(>= 30 dB is visually acceptable)")
    print(f"Baseline output PSNR: {psnr(golden, base_output):.1f} dB "
          "(recovery keeps the baseline exact)")

    model = EnergyModel(fpu_voltage=config.timing.voltage)
    memo_report = memo_executor.device.energy_report(model, label="memoized")
    base_report = base_executor.device.energy_report(model, label="baseline")
    print()
    print(format_energy_report(memo_report, base_report))
    print(f"\nTotal energy saving: {memo_report.saving_vs(base_report):.1%}")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    write_pgm(args.out_dir / "input_face.pgm", image)
    write_pgm(args.out_dir / "sobel_exact.pgm", golden)
    write_pgm(args.out_dir / "sobel_memoized.pgm", memo_output)
    print(f"\nWrote input/exact/memoized images to {args.out_dir}/")


if __name__ == "__main__":
    main()
