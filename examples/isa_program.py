#!/usr/bin/env python3
"""Running a hand-assembled Evergreen-style binary with memoization.

Workloads don't have to be written against the Python kernel API: this
example assembles a small clause-based program (a polynomial evaluator
with a TEX load and an ALU clause using the X and T slots), launches it
over an NDRange on the simulated device, and shows the temporal
memoization module at work underneath an actual instruction stream —
including under injected timing errors.

Usage:
    python examples/isa_program.py [--items 128] [--error-rate 0.02]
"""

import argparse

import numpy as np

from repro import GpuExecutor, MemoConfig, SimConfig, TimingConfig, small_arch
from repro.gpu.isa_executor import IsaKernelExecutor
from repro.gpu.memory import GlobalMemory
from repro.isa.assembler import assemble

# For each work-item i:  y[i] = sqrt(0.5 * x[i]^2 + 1.0)
PROGRAM_SOURCE = """
CF EXEC_TEX @load
CF EXEC_ALU @poly
CF END

TEX @load:
  LOAD r2, [r0]          ; r0 holds the global id

ALU @poly:
  X: MUL r3, r2, r2      ; x^2
  --
  X: MULADD r4, r3, 0.5, 1.0
  --
  T: SQRT r1, r4         ; result convention: r1
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--items", type=int, default=128)
    parser.add_argument("--error-rate", type=float, default=0.02)
    args = parser.parse_args()

    program = assemble(PROGRAM_SOURCE)
    print(f"Assembled program: {program.fp_instruction_count} FP instructions "
          f"per work-item, {len(program.clauses)} clauses\n")

    # Quantized sensor-style input: integers 0..15 repeat across items,
    # which is where the FIFOs find their locality.
    n = args.items
    memory = GlobalMemory(2 * n)
    x = np.arange(n, dtype=np.float32) % 16
    memory.view()[:n] = x

    config = SimConfig(
        arch=small_arch(),
        memo=MemoConfig(threshold=0.0),  # exact matching
        timing=TimingConfig(error_rate=args.error_rate),
    )
    executor = GpuExecutor(config)
    isa_executor = IsaKernelExecutor(executor)
    isa_executor.run(program, n, memory, result_register=1, out_base=n)

    out = memory.as_array()[n:]
    expected = np.sqrt(0.5 * x.astype(np.float64) ** 2 + 1.0)
    max_err = float(np.max(np.abs(out - expected)))
    print(f"max |device - reference| = {max_err:.2e} "
          "(exact matching + recovery keep results numerically clean)\n")

    print("Per-FPU memoization statistics:")
    for kind, stats in sorted(
        executor.device.lut_stats().items(), key=lambda kv: kv[0].value
    ):
        if stats.lookups:
            print(f"  {kind.value:<8} hit rate {stats.hit_rate:6.1%} "
                  f"({stats.hits}/{stats.lookups} lookups)")

    counters = executor.device.counters()
    injected = sum(c.errors_injected for c in counters.values())
    masked = sum(c.errors_masked for c in counters.values())
    recovered = sum(c.errors_recovered for c in counters.values())
    print(f"\nTiming errors: {injected} injected, {masked} masked by hits "
          f"(zero-cycle), {recovered} recovered by the ECU "
          f"({12 * recovered} stall cycles)")


if __name__ == "__main__":
    main()
