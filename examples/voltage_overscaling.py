#!/usr/bin/env python3
"""Voltage overscaling survival (the Figure-11 scenario, interactive).

Scales the FPU supply from the nominal 0.9 V down to 0.8 V at constant
1 GHz.  The voltage model turns each operating point into a timing-error
rate (negligible until ~0.84 V, then rising abruptly); the memoization
module stays at the fixed nominal supply so its hits remain trustworthy.
The example prints both architectures' energy at every point and each
architecture's minimum-energy operating voltage — the memoized design can
be overscaled further before recovery costs blow up.

Usage:
    python examples/voltage_overscaling.py [--kernel Sobel]
"""

import argparse

from repro import EnergyModel, GpuExecutor, MemoConfig, SimConfig, TimingConfig, small_arch
from repro.kernels.registry import KERNEL_REGISTRY
from repro.timing.voltage import VoltageModel

VOLTAGES = (0.90, 0.88, 0.86, 0.85, 0.84, 0.83, 0.82, 0.81, 0.80)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--kernel",
        default="Sobel",
        choices=sorted(KERNEL_REGISTRY),
        help="Table-1 kernel to run at each voltage",
    )
    args = parser.parse_args()

    spec = KERNEL_REGISTRY[args.kernel]
    voltage_model = VoltageModel()
    print(f"{args.kernel} under voltage overscaling "
          f"(threshold {spec.paper_threshold}, memo module fixed at 0.9 V)\n")
    print(f"  {'V':>5}  {'err rate':>9}  {'baseline pJ':>12}  {'memoized pJ':>12}  "
          f"{'saving':>7}")

    base_curve, memo_curve = [], []
    for voltage in VOLTAGES:
        rate = voltage_model.error_rate(voltage)
        config = SimConfig(
            arch=small_arch(),
            memo=MemoConfig(threshold=spec.paper_threshold),
            timing=TimingConfig(error_rate=rate, voltage=voltage),
        )
        model = EnergyModel(fpu_voltage=voltage)

        memo_ex = GpuExecutor(config)
        spec.default_factory().run(memo_ex)
        memo_pj = memo_ex.device.energy_report(model).total_pj

        base_ex = GpuExecutor(config, memoized=False)
        spec.default_factory().run(base_ex)
        base_pj = base_ex.device.energy_report(model).total_pj

        base_curve.append((voltage, base_pj))
        memo_curve.append((voltage, memo_pj))
        print(f"  {voltage:>5.2f}  {rate:>9.4%}  {base_pj:>12.3e}  "
              f"{memo_pj:>12.3e}  {1 - memo_pj / base_pj:>7.1%}")

    best_base = min(base_curve, key=lambda point: point[1])
    best_memo = min(memo_curve, key=lambda point: point[1])
    print(f"\nMinimum-energy operating point:")
    print(f"  baseline : {best_base[0]:.2f} V ({best_base[1]:.3e} pJ)")
    print(f"  memoized : {best_memo[0]:.2f} V ({best_memo[1]:.3e} pJ)")
    print("\nThe memoized architecture tolerates deeper overscaling because "
          "hits correct errant instructions with zero recovery cycles.")


if __name__ == "__main__":
    main()
