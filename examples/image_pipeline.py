#!/usr/bin/env python3
"""Error-tolerant image pipeline: picking the approximation threshold.

Reproduces the workflow of Section 4.1: for each filter (Gaussian blur,
Sobel edges) and each input image (synthetic 'face' and 'book'), sweep the
approximate-matching threshold and pick the largest one that still meets
the 30 dB PSNR fidelity budget — larger thresholds buy more hits (more
energy saved) at the cost of output quality, exactly the knob the paper's
programmable masking-vector register exposes to applications.

Usage:
    python examples/image_pipeline.py [--size 64]
"""

import argparse

from repro import GpuExecutor, MemoConfig, SimConfig, small_arch
from repro.analysis.hitrate import weighted_hit_rate
from repro.images import psnr, synthetic_image
from repro.kernels.gaussian import GaussianWorkload
from repro.kernels.sobel import SobelWorkload

PSNR_BUDGET_DB = 30.0
THRESHOLDS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def pick_threshold(workload_cls, image, label: str) -> float:
    """Sweep thresholds; return the largest one meeting the PSNR budget."""
    golden = workload_cls(image).golden()
    best = 0.0
    print(f"{label}:")
    print(f"  {'threshold':>9}  {'PSNR dB':>8}  {'hit rate':>8}  verdict")
    for threshold in THRESHOLDS:
        config = SimConfig(arch=small_arch(), memo=MemoConfig(threshold=threshold))
        executor = GpuExecutor(config)
        output = workload_cls(image).run(executor)
        quality = psnr(golden, output)
        hits = weighted_hit_rate(executor.device.lut_stats())
        ok = quality >= PSNR_BUDGET_DB
        if ok:
            best = max(best, threshold)
        print(f"  {threshold:>9.1f}  {quality:>8.1f}  {hits:>8.1%}  "
              f"{'ok' if ok else 'too lossy'}")
    print(f"  -> selected threshold {best} "
          f"(largest meeting the {PSNR_BUDGET_DB:.0f} dB budget)\n")
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=64)
    args = parser.parse_args()

    for image_name in ("face", "book"):
        image = synthetic_image(image_name, args.size)
        pick_threshold(SobelWorkload, image, f"Sobel / {image_name}")
        pick_threshold(GaussianWorkload, image, f"Gaussian / {image_name}")


if __name__ == "__main__":
    main()
